#include "rpc/client_base.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace domino::rpc {
namespace {

net::Topology one_dc() { return net::Topology{{"A"}, {{0.0}}}; }

/// Client whose propose() self-commits after a fixed delay.
class LoopbackClient : public ClientBase {
 public:
  LoopbackClient(NodeId id, net::Network& network, Duration commit_delay)
      : ClientBase(id, 0, network, sim::LocalClock{}), delay_(commit_delay) {}

  std::vector<sm::Command> proposed;

 protected:
  void propose(const sm::Command& command) override {
    proposed.push_back(command);
    after(delay_, [this, id = command.id] { handle_committed(id); });
  }
  void on_packet(const net::Packet&) override {}

 private:
  Duration delay_;
};

TEST(ClientBase, SubmitTriggersProposeAndHooks) {
  sim::Simulator simulator;
  net::Network network(simulator, one_dc(), 1);
  LoopbackClient c(NodeId{1000}, network, milliseconds(30));
  c.attach();

  std::vector<Duration> latencies;
  c.set_commit_hook([&](const RequestId&, TimePoint sent, TimePoint committed) {
    latencies.push_back(committed - sent);
  });
  int sends = 0;
  c.set_send_hook([&](const RequestId&, TimePoint) { ++sends; });

  sm::Command cmd;
  cmd.id = RequestId{NodeId{1000}, 0};
  cmd.key = "k";
  cmd.value = "v";
  c.submit(cmd);
  simulator.run();

  EXPECT_EQ(sends, 1);
  EXPECT_EQ(c.submitted_count(), 1u);
  EXPECT_EQ(c.committed_count(), 1u);
  ASSERT_EQ(latencies.size(), 1u);
  EXPECT_EQ(latencies[0], milliseconds(30));
}

TEST(ClientBase, DuplicateCommitIgnored) {
  sim::Simulator simulator;
  net::Network network(simulator, one_dc(), 1);

  class DoubleCommit : public LoopbackClient {
   public:
    using LoopbackClient::LoopbackClient;
    void force_commit(const RequestId& id) { handle_committed(id); }
  };
  DoubleCommit c(NodeId{1000}, network, milliseconds(1));
  c.attach();
  int commits = 0;
  c.set_commit_hook([&](const RequestId&, TimePoint, TimePoint) { ++commits; });

  sm::Command cmd;
  cmd.id = RequestId{NodeId{1000}, 0};
  c.submit(cmd);
  simulator.run();
  c.force_commit(cmd.id);  // duplicate
  EXPECT_EQ(commits, 1);
  EXPECT_EQ(c.committed_count(), 1u);
}

TEST(ClientBase, ForeignCommitIgnored) {
  sim::Simulator simulator;
  net::Network network(simulator, one_dc(), 1);
  class Exposed : public LoopbackClient {
   public:
    using LoopbackClient::LoopbackClient;
    void force_commit(const RequestId& id) { handle_committed(id); }
  };
  Exposed c(NodeId{1000}, network, milliseconds(1));
  c.attach();
  c.force_commit(RequestId{NodeId{1234}, 0});  // not our client id
  EXPECT_EQ(c.committed_count(), 0u);
}

TEST(ClientBase, LoadGeneratorPacesRequests) {
  sim::Simulator simulator;
  net::Network network(simulator, one_dc(), 1);
  LoopbackClient c(NodeId{1000}, network, milliseconds(1));
  c.attach();
  sm::WorkloadConfig wc;
  wc.num_keys = 100;
  sm::WorkloadGenerator gen(wc, 1);
  c.start_load(gen, 100.0);  // 100 rps -> every 10 ms
  simulator.run_until(TimePoint::epoch() + seconds(1));
  c.stop_load();
  EXPECT_EQ(c.submitted_count(), 100u);
  simulator.run_until(TimePoint::epoch() + seconds(2));
  EXPECT_EQ(c.committed_count(), 100u);
  EXPECT_EQ(c.inflight_count(), 0u);
}

TEST(ClientBase, ZeroRateIsNoop) {
  sim::Simulator simulator;
  net::Network network(simulator, one_dc(), 1);
  LoopbackClient c(NodeId{1000}, network, milliseconds(1));
  c.attach();
  sm::WorkloadConfig wc;
  sm::WorkloadGenerator gen(wc, 1);
  c.start_load(gen, 0.0);
  simulator.run_until(TimePoint::epoch() + seconds(1));
  EXPECT_EQ(c.submitted_count(), 0u);
}

/// Client that silently drops the first `drop_first` proposals, then
/// behaves like LoopbackClient (self-commit after a fixed delay).
class FlakyClient : public ClientBase {
 public:
  FlakyClient(NodeId id, net::Network& network, Duration commit_delay,
              std::size_t drop_first)
      : ClientBase(id, 0, network, sim::LocalClock{}),
        delay_(commit_delay),
        drop_remaining_(drop_first) {}

  std::size_t proposals = 0;

 protected:
  void propose(const sm::Command& command) override {
    ++proposals;
    if (drop_remaining_ > 0) {
      --drop_remaining_;
      return;  // lost: nothing will commit this attempt
    }
    after(delay_, [this, id = command.id] { handle_committed(id); });
  }
  void on_packet(const net::Packet&) override {}

 private:
  Duration delay_;
  std::size_t drop_remaining_;
};

sm::Command command_for(NodeId client, std::uint64_t seq) {
  sm::Command cmd;
  cmd.id = RequestId{client, seq};
  cmd.key = "k";
  cmd.value = "v";
  return cmd;
}

TEST(ClientBase, TimeoutRetriesUntilCommit) {
  sim::Simulator simulator;
  net::Network network(simulator, one_dc(), 1);
  FlakyClient c(NodeId{1000}, network, milliseconds(5), /*drop_first=*/2);
  c.attach();
  c.set_request_timeout(milliseconds(20), /*max_retries=*/3);

  c.submit(command_for(NodeId{1000}, 0));
  simulator.run();

  // Initial proposal + 2 retries before one gets through and commits.
  EXPECT_EQ(c.proposals, 3u);
  EXPECT_EQ(c.retry_count(), 2u);
  EXPECT_EQ(c.committed_count(), 1u);
  EXPECT_EQ(c.abandoned_count(), 0u);
  EXPECT_EQ(c.inflight_count(), 0u);
}

TEST(ClientBase, AbandonsAfterMaxRetries) {
  sim::Simulator simulator;
  net::Network network(simulator, one_dc(), 1);
  FlakyClient c(NodeId{1000}, network, milliseconds(5), /*drop_first=*/100);
  c.attach();
  c.set_request_timeout(milliseconds(20), /*max_retries=*/2);

  c.submit(command_for(NodeId{1000}, 0));
  simulator.run();

  EXPECT_EQ(c.proposals, 3u);  // initial + 2 retries, all lost
  EXPECT_EQ(c.retry_count(), 2u);
  EXPECT_EQ(c.committed_count(), 0u);
  EXPECT_EQ(c.abandoned_count(), 1u);
  EXPECT_EQ(c.inflight_count(), 0u);
  // submitted == committed + abandoned + inflight.
  EXPECT_EQ(c.submitted_count(),
            c.committed_count() + c.abandoned_count() + c.inflight_count());
}

TEST(ClientBase, LateCommitAfterAbandonIsUncounted) {
  sim::Simulator simulator;
  net::Network network(simulator, one_dc(), 1);
  // Commits do arrive, but far later than the timeout budget allows.
  LoopbackClient c(NodeId{1000}, network, milliseconds(200));
  c.attach();
  c.set_request_timeout(milliseconds(10), /*max_retries=*/0);

  c.submit(command_for(NodeId{1000}, 0));
  simulator.run_until(TimePoint::epoch() + milliseconds(50));
  EXPECT_EQ(c.abandoned_count(), 1u);  // timed out at 10 ms, no retries

  simulator.run();  // the 200 ms self-commit lands
  EXPECT_EQ(c.committed_count(), 1u);
  EXPECT_EQ(c.abandoned_count(), 0u);  // late commit corrects the books
  EXPECT_EQ(c.submitted_count(),
            c.committed_count() + c.abandoned_count() + c.inflight_count());
}

TEST(ClientBase, NoRetryWhenCommitBeatsTimeout) {
  sim::Simulator simulator;
  net::Network network(simulator, one_dc(), 1);
  LoopbackClient c(NodeId{1000}, network, milliseconds(5));
  c.attach();
  c.set_request_timeout(milliseconds(50), /*max_retries=*/3);

  c.submit(command_for(NodeId{1000}, 0));
  simulator.run();

  EXPECT_EQ(c.proposed.size(), 1u);
  EXPECT_EQ(c.retry_count(), 0u);
  EXPECT_EQ(c.committed_count(), 1u);
}

TEST(ClientBase, CustomTimeoutHookOverridesDefault) {
  sim::Simulator simulator;
  net::Network network(simulator, one_dc(), 1);

  class FailoverClient : public ClientBase {
   public:
    FailoverClient(NodeId id, net::Network& network)
        : ClientBase(id, 0, network, sim::LocalClock{}) {}
    std::vector<std::size_t> failover_attempts;

   protected:
    void propose(const sm::Command&) override {}  // primary path: black hole
    void on_request_timeout(const sm::Command& command, std::size_t attempt) override {
      failover_attempts.push_back(attempt);
      // "Backup path" commits immediately.
      handle_committed(command.id);
    }
    void on_packet(const net::Packet&) override {}
  };

  FailoverClient c(NodeId{1000}, network);
  c.attach();
  c.set_request_timeout(milliseconds(10), /*max_retries=*/3);
  c.submit(command_for(NodeId{1000}, 0));
  simulator.run();

  ASSERT_EQ(c.failover_attempts.size(), 1u);
  EXPECT_EQ(c.failover_attempts[0], 1u);
  EXPECT_EQ(c.committed_count(), 1u);
  EXPECT_EQ(c.retry_count(), 1u);
  EXPECT_EQ(c.abandoned_count(), 0u);
}

// --- Retry backoff -------------------------------------------------------

/// Client whose propose() records virtual send times and commits nothing.
class SinkClient : public ClientBase {
 public:
  SinkClient(NodeId id, net::Network& network, sim::Simulator& simulator)
      : ClientBase(id, 0, network, sim::LocalClock{}), sim_(simulator) {}

  std::vector<TimePoint> propose_times;

 protected:
  void propose(const sm::Command&) override { propose_times.push_back(sim_.now()); }
  void on_packet(const net::Packet&) override {}

 private:
  sim::Simulator& sim_;
};

TEST(ClientBackoff, DelayGrowsExponentiallyAndClampsAtCap) {
  sim::Simulator simulator;
  net::Network network(simulator, one_dc(), 1);
  SinkClient c(NodeId{1000}, network, simulator);
  c.attach();
  c.set_request_timeout(milliseconds(10));
  c.set_retry_backoff(/*multiplier=*/2.0, /*cap=*/milliseconds(25),
                      /*jitter=*/0.0, /*seed=*/7);

  EXPECT_EQ(c.backoff_delay(1), milliseconds(10));
  EXPECT_EQ(c.backoff_delay(2), milliseconds(20));
  EXPECT_EQ(c.backoff_delay(3), milliseconds(25));  // 40 clamped to the cap
  EXPECT_EQ(c.backoff_delay(4), milliseconds(25));
  EXPECT_EQ(c.backoff_delay(10), milliseconds(25));
}

TEST(ClientBackoff, DefaultsReproduceLegacyFixedInterval) {
  sim::Simulator simulator;
  net::Network network(simulator, one_dc(), 1);
  SinkClient plain(NodeId{1000}, network, simulator);
  plain.attach();
  plain.set_request_timeout(milliseconds(10));
  // Backoff never configured: every wait is the plain timeout.
  EXPECT_EQ(plain.backoff_delay(1), milliseconds(10));
  EXPECT_EQ(plain.backoff_delay(5), milliseconds(10));

  SinkClient legacy(NodeId{1001}, network, simulator);
  legacy.attach();
  legacy.set_request_timeout(milliseconds(10));
  legacy.set_retry_backoff(/*multiplier=*/1.0, /*cap=*/Duration::zero(),
                           /*jitter=*/0.0, /*seed=*/7);
  // multiplier = 1, jitter = 0 is the legacy fixed interval, explicitly.
  EXPECT_EQ(legacy.backoff_delay(1), milliseconds(10));
  EXPECT_EQ(legacy.backoff_delay(5), milliseconds(10));
}

TEST(ClientBackoff, JitterIsSeededAndDeterministic) {
  sim::Simulator simulator;
  net::Network network(simulator, one_dc(), 1);

  NodeId next_id{1000};
  const auto sequence = [&](std::uint64_t seed) {
    SinkClient c(next_id, network, simulator);
    next_id = NodeId{next_id.value() + 1};
    c.attach();
    c.set_request_timeout(milliseconds(10));
    c.set_retry_backoff(/*multiplier=*/2.0, /*cap=*/milliseconds(200),
                        /*jitter=*/0.5, seed);
    std::vector<Duration> waits;
    for (std::size_t attempt = 1; attempt <= 5; ++attempt) {
      waits.push_back(c.backoff_delay(attempt));
    }
    return waits;
  };

  const std::vector<Duration> a = sequence(42);
  const std::vector<Duration> b = sequence(42);
  EXPECT_EQ(a, b);  // same seed, same jittered sequence

  // Every jittered wait stays within [base, base * (1 + jitter)).
  for (std::size_t attempt = 1; attempt <= 5; ++attempt) {
    const double base = static_cast<double>(milliseconds(10).nanos()) *
                        std::pow(2.0, static_cast<double>(attempt - 1));
    const double clamped = std::min(base, static_cast<double>(milliseconds(200).nanos()));
    EXPECT_GE(static_cast<double>(a[attempt - 1].nanos()), clamped);
    EXPECT_LT(static_cast<double>(a[attempt - 1].nanos()), clamped * 1.5);
  }

  // A different seed draws different jitter (overwhelmingly likely over
  // five attempts).
  EXPECT_NE(a, sequence(43));
}

TEST(ClientBackoff, RetriesFireAtBackoffInstantsThenAbandon) {
  sim::Simulator simulator;
  net::Network network(simulator, one_dc(), 1);
  SinkClient c(NodeId{1000}, network, simulator);
  c.attach();
  c.set_request_timeout(milliseconds(10), /*max_retries=*/2);
  c.set_retry_backoff(/*multiplier=*/2.0, /*cap=*/Duration::zero(),
                      /*jitter=*/0.0, /*seed=*/7);

  c.submit(command_for(NodeId{1000}, 0));
  simulator.run();

  // Initial proposal at 0; retry 1 after 10 ms; retry 2 another 20 ms on;
  // the final 40 ms timer then exhausts the budget and abandons.
  const TimePoint t0 = TimePoint::epoch();
  ASSERT_EQ(c.propose_times.size(), 3u);
  EXPECT_EQ(c.propose_times[0], t0);
  EXPECT_EQ(c.propose_times[1], t0 + milliseconds(10));
  EXPECT_EQ(c.propose_times[2], t0 + milliseconds(30));
  EXPECT_EQ(c.retry_count(), 2u);
  EXPECT_EQ(c.abandoned_count(), 1u);
  EXPECT_EQ(simulator.now(), t0 + milliseconds(70));  // 30 + the last 40 ms wait
}

}  // namespace
}  // namespace domino::rpc
