#include "rpc/node.h"

#include <gtest/gtest.h>

#include "measure/messages.h"

namespace domino::rpc {
namespace {

net::Topology one_dc() { return net::Topology{{"A"}, {{0.0}}}; }

class EchoNode : public Node {
 public:
  using Node::Node;
  int received = 0;
  NodeId last_from;

 protected:
  void on_packet(const net::Packet& packet) override {
    ++received;
    last_from = packet.src;
    if (wire::peek_type(packet.payload) == wire::MessageType::kProbe) {
      const auto probe = wire::decode_message<measure::Probe>(packet.payload);
      measure::ProbeReply reply;
      reply.seq = probe.seq;
      reply.echo_sender_local_time = probe.sender_local_time;
      reply.replica_local_time = local_now();
      send(packet.src, reply);
    }
  }
};

TEST(Node, AttachRegistersReceiver) {
  sim::Simulator simulator;
  net::Network network(simulator, one_dc(), 1);
  EchoNode a(NodeId{0}, 0, network);
  EchoNode b(NodeId{1}, 0, network);
  a.attach();
  b.attach();
  measure::Probe p;
  p.seq = 1;
  a.send(NodeId{1}, p);
  simulator.run();
  EXPECT_EQ(b.received, 1);
  EXPECT_EQ(b.last_from, NodeId{0});
  EXPECT_EQ(a.received, 1);  // the echo reply
}

TEST(Node, DoubleAttachThrows) {
  sim::Simulator simulator;
  net::Network network(simulator, one_dc(), 1);
  EchoNode a(NodeId{0}, 0, network);
  a.attach();
  EXPECT_THROW(a.attach(), std::logic_error);
}

TEST(Node, LocalNowAppliesClock) {
  sim::Simulator simulator;
  net::Network network(simulator, one_dc(), 1);
  EchoNode a(NodeId{0}, 0, network, sim::LocalClock{milliseconds(7), 0.0});
  a.attach();
  simulator.run_until(TimePoint::epoch() + seconds(1));
  EXPECT_EQ(a.true_now(), TimePoint::epoch() + seconds(1));
  EXPECT_EQ(a.local_now(), TimePoint::epoch() + seconds(1) + milliseconds(7));
}

TEST(Node, AfterSchedulesOnSimulator) {
  sim::Simulator simulator;
  net::Network network(simulator, one_dc(), 1);
  EchoNode a(NodeId{0}, 0, network);
  a.attach();
  bool ran = false;
  a.after(milliseconds(5), [&] { ran = true; });
  simulator.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(simulator.now(), TimePoint::epoch() + milliseconds(5));
}

}  // namespace
}  // namespace domino::rpc
