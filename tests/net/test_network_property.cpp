// Property tests for the simulated WAN across seeds: per-channel FIFO,
// delivery-time lower bounds, and conservation (every packet sent to a live
// node is delivered exactly once).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/network.h"

namespace domino::net {
namespace {

Topology two_dc() { return Topology{{"A", "B"}, {{0.0, 40.0}, {40.0, 0.0}}}; }

TEST(NetworkProperty, FifoAndConservationAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    sim::Simulator simulator;
    Network network(simulator, two_dc(), seed);
    JitterParams heavy;
    heavy.jitter_sigma = 2.0;
    heavy.spike_prob = 0.02;
    heavy.spike_mean = milliseconds(40);
    network.use_default_links(heavy);

    // Node 0 and 1 in A, node 2 in B: two independent channels into node 2.
    std::vector<std::vector<std::uint64_t>> received_from(3);
    std::uint64_t total_received = 0;
    network.register_node(NodeId{0}, 0, [](const Packet&) {});
    network.register_node(NodeId{1}, 0, [](const Packet&) {});
    network.register_node(NodeId{2}, 1, [&](const Packet& p) {
      wire::ByteReader r{p.payload};
      received_from[p.src.value()].push_back(r.u64());
      ++total_received;
    });

    Rng rng(seed * 7);
    std::uint64_t sent = 0;
    std::uint64_t seq[2] = {0, 0};
    for (int burst = 0; burst < 50; ++burst) {
      simulator.schedule_after(milliseconds(rng.uniform_i64(0, 5)), [&, burst] {
        for (int k = 0; k < 4; ++k) {
          const std::size_t src = (burst + k) % 2;
          wire::ByteWriter w;
          w.u64(seq[src]++);
          network.send(NodeId{(std::uint32_t)src}, NodeId{2}, w.take());
          ++sent;
        }
      });
      simulator.run_until(simulator.now() + milliseconds(2));
    }
    simulator.run();

    // Conservation: everything arrives exactly once.
    EXPECT_EQ(total_received, sent) << "seed=" << seed;
    // FIFO per channel: per-sender sequence numbers arrive in order.
    for (std::size_t src = 0; src < 2; ++src) {
      for (std::size_t i = 0; i < received_from[src].size(); ++i) {
        EXPECT_EQ(received_from[src][i], i) << "seed=" << seed << " src=" << src;
      }
    }
  }
}

TEST(NetworkProperty, DeliveryNeverFasterThanBaseOwd) {
  sim::Simulator simulator;
  Network network(simulator, two_dc(), 3);
  JitterParams p;  // jitter adds, never subtracts
  network.use_default_links(p);
  std::vector<Duration> delays;
  TimePoint sent_at;
  network.register_node(NodeId{0}, 0, [](const Packet&) {});
  network.register_node(NodeId{1}, 1, [&](const Packet& pkt) {
    delays.push_back(simulator.now() - pkt.sent_at);
  });
  for (int i = 0; i < 200; ++i) {
    simulator.schedule_after(milliseconds(i), [&] {
      network.send(NodeId{0}, NodeId{1}, wire::Payload{1});
    });
  }
  simulator.run();
  ASSERT_EQ(delays.size(), 200u);
  for (const Duration d : delays) EXPECT_GE(d, milliseconds(20));  // base OWD = RTT/2
}

TEST(NetworkProperty, CapacityConservesUnderOverload) {
  // With a service queue, packets are delayed but never lost or duplicated.
  sim::Simulator simulator;
  Network network(simulator, two_dc(), 5);
  network.register_node(NodeId{0}, 0, [](const Packet&) {});
  int received = 0;
  network.register_node(NodeId{1}, 1, [&](const Packet&) { ++received; });
  network.set_receive_service_time(NodeId{1}, milliseconds(1));
  for (int i = 0; i < 500; ++i) {
    network.send(NodeId{0}, NodeId{1}, wire::Payload{static_cast<std::uint8_t>(i)});
  }
  simulator.run();
  EXPECT_EQ(received, 500);
  // Serial service: the run must span at least 500 ms of virtual time.
  EXPECT_GE(simulator.now() - TimePoint::epoch(), milliseconds(500));
}

}  // namespace
}  // namespace domino::net
