// FaultInjector / FaultSchedule unit tests: drop reasons, link partitions,
// degradation epochs, route changes, FIFO-channel reset on recovery, and
// scheduling determinism (same seed + schedule => identical drop/deliver
// behaviour and digest).
#include "net/fault.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/network.h"

namespace domino::net {
namespace {

Topology two_dc() { return Topology{{"A", "B"}, {{0.0, 10.0}, {10.0, 0.0}}}; }

Topology three_dc() {
  return Topology{{"A", "B", "C"},
                  {{0.0, 10.0, 20.0}, {10.0, 0.0, 30.0}, {20.0, 30.0, 0.0}}};
}

wire::Payload payload_of(std::uint8_t tag) { return wire::Payload{tag}; }

struct Fixture {
  sim::Simulator simulator;
  Network network;
  std::vector<std::pair<NodeId, std::uint8_t>> delivered;  // (dst, first byte)
  std::vector<TimePoint> delivery_times;

  explicit Fixture(Topology topo = two_dc(), std::uint64_t seed = 1)
      : network(simulator, std::move(topo), seed) {}

  void add_node(NodeId id, std::size_t dc) {
    network.register_node(id, dc, [this, id](const Packet& p) {
      delivered.emplace_back(id, p.payload.empty() ? 0 : p.payload[0]);
      delivery_times.push_back(simulator.now());
    });
  }

  TimePoint at(std::int64_t ms) { return TimePoint::epoch() + milliseconds(ms); }
};

TEST(FaultSchedule, BuilderComposesAndCounts) {
  FaultSchedule s;
  s.crash_for(TimePoint::epoch() + milliseconds(10), NodeId{1}, milliseconds(5))
      .partition_both_for(TimePoint::epoch() + milliseconds(20), 0, 1, milliseconds(5))
      .degrade(TimePoint::epoch() + milliseconds(30), milliseconds(10), 0, 1, 2.0)
      .route_change(TimePoint::epoch() + milliseconds(40), 0, 1, milliseconds(7));
  // crash_for = crash + recover; partition_both_for = 2 partitions + 2 heals;
  // degrade = start + end; route_change = 1.
  EXPECT_EQ(s.size(), 2u + 4u + 2u + 1u);
  EXPECT_FALSE(s.empty());
}

TEST(FaultInjector, CrashedSourceAndDestReasons) {
  Fixture f;
  f.add_node(NodeId{0}, 0);
  f.add_node(NodeId{1}, 1);

  f.network.crash(NodeId{0});
  f.network.send(NodeId{0}, NodeId{1}, payload_of(1));  // crashed source
  f.network.recover(NodeId{0});
  f.network.crash(NodeId{1});
  f.network.send(NodeId{0}, NodeId{1}, payload_of(2));  // crashed destination
  f.simulator.run();

  EXPECT_TRUE(f.delivered.empty());
  EXPECT_EQ(f.network.packets_dropped(), 2u);
  EXPECT_EQ(f.network.packets_dropped(DropReason::kCrashedSource), 1u);
  EXPECT_EQ(f.network.packets_dropped(DropReason::kCrashedDest), 1u);
  EXPECT_EQ(f.network.packets_dropped(DropReason::kPartition), 0u);
}

TEST(FaultInjector, PartitionIsDirectedAndHeals) {
  Fixture f;
  f.add_node(NodeId{0}, 0);
  f.add_node(NodeId{1}, 1);

  f.network.fault().partition(0, 1);
  f.network.send(NodeId{0}, NodeId{1}, payload_of(1));  // dropped
  f.network.send(NodeId{1}, NodeId{0}, payload_of(2));  // reverse flows
  f.simulator.run();
  ASSERT_EQ(f.delivered.size(), 1u);
  EXPECT_EQ(f.delivered[0].second, 2);
  EXPECT_EQ(f.network.packets_dropped(DropReason::kPartition), 1u);

  f.network.fault().heal(0, 1);
  f.network.send(NodeId{0}, NodeId{1}, payload_of(3));
  f.simulator.run();
  EXPECT_EQ(f.delivered.size(), 2u);
  EXPECT_EQ(f.delivered.back().second, 3);
}

TEST(FaultInjector, PartitionDoesNotAffectIntraDc) {
  Fixture f{three_dc()};
  f.add_node(NodeId{0}, 0);
  f.add_node(NodeId{1}, 0);
  f.network.fault().partition(0, 0);  // nonsensical but must be harmless
  f.network.send(NodeId{0}, NodeId{1}, payload_of(1));
  f.simulator.run();
  EXPECT_EQ(f.delivered.size(), 1u);
}

TEST(FaultInjector, InFlightPacketLostToMidFlightPartition) {
  Fixture f;
  f.add_node(NodeId{0}, 0);
  f.add_node(NodeId{1}, 1);
  // OWD is 5 ms; partition the link at 2 ms, while the packet is in flight.
  f.network.send(NodeId{0}, NodeId{1}, payload_of(1));
  f.simulator.schedule_at(f.at(2), [&f] { f.network.fault().partition(0, 1); });
  f.simulator.run();
  EXPECT_TRUE(f.delivered.empty());
  EXPECT_EQ(f.network.packets_dropped(DropReason::kPartition), 1u);
}

TEST(FaultInjector, ScheduledCrashAndRecoverApplyAtTheRightTimes) {
  Fixture f;
  f.add_node(NodeId{0}, 0);
  f.add_node(NodeId{1}, 1);

  FaultSchedule s;
  s.crash_for(f.at(10), NodeId{1}, milliseconds(10));  // down in [10ms, 20ms)
  f.network.install_faults(s);

  f.simulator.schedule_at(f.at(12), [&f] {
    EXPECT_TRUE(f.network.is_crashed(NodeId{1}));
    f.network.send(NodeId{0}, NodeId{1}, payload_of(1));  // dropped
  });
  f.simulator.schedule_at(f.at(25), [&f] {
    EXPECT_FALSE(f.network.is_crashed(NodeId{1}));
    f.network.send(NodeId{0}, NodeId{1}, payload_of(2));  // delivered
  });
  f.simulator.run();

  ASSERT_EQ(f.delivered.size(), 1u);
  EXPECT_EQ(f.delivered[0].second, 2);
  EXPECT_EQ(f.network.packets_dropped(DropReason::kCrashedDest), 1u);
  EXPECT_EQ(f.network.fault().transitions(), 2u);  // crash + recover
}

TEST(FaultInjector, DegradationEpochMultipliesDelayThenExpires) {
  Fixture f;
  f.add_node(NodeId{0}, 0);
  f.add_node(NodeId{1}, 1);
  // Constant-latency default links: OWD A->B = 5 ms.
  FaultSchedule s;
  s.degrade(f.at(0), milliseconds(100), 0, 1, /*multiplier=*/3.0);
  f.network.install_faults(s);

  f.simulator.schedule_at(f.at(10), [&f] {
    f.network.send(NodeId{0}, NodeId{1}, payload_of(1));  // 3x => 15 ms
  });
  f.simulator.schedule_at(f.at(200), [&f] {
    f.network.send(NodeId{0}, NodeId{1}, payload_of(2));  // back to 5 ms
  });
  f.simulator.run();

  ASSERT_EQ(f.delivery_times.size(), 2u);
  EXPECT_EQ(f.delivery_times[0], f.at(10) + milliseconds(15));
  EXPECT_EQ(f.delivery_times[1], f.at(200) + milliseconds(5));
}

TEST(FaultInjector, RouteChangeShiftsBasePermanently) {
  Fixture f;
  f.add_node(NodeId{0}, 0);
  f.add_node(NodeId{1}, 1);
  FaultSchedule s;
  s.route_change(f.at(0), 0, 1, milliseconds(20));
  f.network.install_faults(s);

  f.simulator.schedule_at(f.at(5), [&f] {
    f.network.send(NodeId{0}, NodeId{1}, payload_of(1));
  });
  f.simulator.schedule_at(f.at(500), [&f] {
    f.network.send(NodeId{0}, NodeId{1}, payload_of(2));
  });
  f.simulator.run();

  ASSERT_EQ(f.delivery_times.size(), 2u);
  EXPECT_EQ(f.delivery_times[0], f.at(5) + milliseconds(20));
  EXPECT_EQ(f.delivery_times[1], f.at(500) + milliseconds(20));
}

// Regression: recovery must clear the recovered node's FIFO channel state.
// A crash tears down the node's "TCP connections", so a packet sent on a
// fresh post-recovery connection must not be FIFO-clamped behind a slow
// pre-crash packet's scheduled arrival.
TEST(Network, RecoverResetsFifoChannelState) {
  Fixture f;
  f.add_node(NodeId{0}, 0);
  f.add_node(NodeId{1}, 1);

  // Slow route: the pre-crash packet will deliver at t = 50 ms, and the
  // FIFO clamp records that as the channel's last delivery at send time.
  f.network.fault().route_change(0, 1, milliseconds(50));
  f.network.send(NodeId{0}, NodeId{1}, payload_of(1));

  f.simulator.schedule_at(f.at(1), [&f] { f.network.crash(NodeId{1}); });
  f.simulator.schedule_at(f.at(2), [&f] {
    f.network.fault().route_change(0, 1, milliseconds(5));
  });
  f.simulator.schedule_at(f.at(3), [&f] { f.network.recover(NodeId{1}); });
  f.simulator.schedule_at(f.at(4), [&f] {
    f.network.send(NodeId{0}, NodeId{1}, payload_of(2));
  });
  f.simulator.run();

  // The post-recovery packet takes the fresh 5 ms route instead of queuing
  // behind the old channel's 50 ms ghost; the pre-crash packet still lands
  // at 50 ms (the destination is alive again by then).
  ASSERT_EQ(f.delivered.size(), 2u);
  EXPECT_EQ(f.delivered[0].second, 2);
  EXPECT_EQ(f.delivery_times[0], f.at(4) + milliseconds(5));
  EXPECT_EQ(f.delivered[1].second, 1);
  EXPECT_EQ(f.delivery_times[1], f.at(0) + milliseconds(50));
}

FaultSchedule chaos_schedule(TimePoint epoch) {
  FaultSchedule s;
  s.crash_for(epoch + milliseconds(20), NodeId{1}, milliseconds(30))
      .partition_both_for(epoch + milliseconds(60), 0, 1, milliseconds(25))
      .degrade(epoch + milliseconds(100), milliseconds(50), 0, 1, 2.5,
               /*extra_spike_prob=*/0.3, /*spike_mean=*/milliseconds(4))
      .route_change(epoch + milliseconds(160), 1, 0, milliseconds(12));
  return s;
}

struct TraceResult {
  std::vector<TimePoint> deliveries;
  std::uint64_t digest = 0;
  std::uint64_t drops = 0;
  std::uint64_t transitions = 0;
};

TraceResult run_chaos(std::uint64_t seed) {
  Fixture f{two_dc(), seed};
  f.add_node(NodeId{0}, 0);
  f.add_node(NodeId{1}, 1);
  f.network.install_faults(chaos_schedule(TimePoint::epoch()));
  // A steady bidirectional stream of packets across the whole timeline.
  for (std::int64_t ms = 0; ms < 250; ms += 3) {
    f.simulator.schedule_at(f.at(ms), [&f, ms] {
      f.network.send(NodeId{0}, NodeId{1}, payload_of(static_cast<std::uint8_t>(ms)));
      f.network.send(NodeId{1}, NodeId{0}, payload_of(static_cast<std::uint8_t>(ms + 1)));
    });
  }
  f.simulator.run();
  return TraceResult{f.delivery_times, f.network.fault().digest(),
                     f.network.packets_dropped(), f.network.fault().transitions()};
}

TEST(FaultInjector, SameSeedAndScheduleGiveIdenticalTraces) {
  const TraceResult a = run_chaos(42);
  const TraceResult b = run_chaos(42);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_EQ(a.transitions, b.transitions);
  ASSERT_EQ(a.deliveries.size(), b.deliveries.size());
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_GT(a.drops, 0u);        // the schedule actually dropped something
  EXPECT_EQ(a.transitions, 9u);  // 2 + 4 + 2 + 1 events applied
}

TEST(FaultInjector, DegradationSpikesComeFromTheInjectorSeed) {
  // Different seeds may produce different spike delays, but the fault/drop
  // digest tracks only transitions and drops, whose *times* depend on the
  // deterministic send schedule — so drops can differ only if spikes push
  // packets across fault boundaries. The key property: each seed is
  // internally reproducible.
  const TraceResult a1 = run_chaos(7);
  const TraceResult a2 = run_chaos(7);
  EXPECT_EQ(a1.digest, a2.digest);
  EXPECT_EQ(a1.deliveries, a2.deliveries);
}

// Overlapping crash_for windows: crash(10..20) and crash(15..25) on the same
// node. The second crash hits an already-down node (no-op), so the FIRST
// recover at 20 ms brings the node back even though the second window claims
// downtime until 25 ms; the second recover is then a no-op too. Exactly one
// crash->recover pair is accounted.
TEST(FaultInjector, OverlappingCrashWindowsRecoverAtFirstDeadline) {
  Fixture f;
  f.add_node(NodeId{0}, 0);
  f.add_node(NodeId{1}, 1);

  FaultSchedule s;
  s.crash_for(f.at(10), NodeId{1}, milliseconds(10))
      .crash_for(f.at(15), NodeId{1}, milliseconds(10));
  f.network.install_faults(s);

  f.simulator.schedule_at(f.at(17), [&f] {
    EXPECT_TRUE(f.network.is_crashed(NodeId{1}));
  });
  f.simulator.schedule_at(f.at(22), [&f] {
    // First window's recover already fired; the overlap does not extend it.
    EXPECT_FALSE(f.network.is_crashed(NodeId{1}));
    f.network.send(NodeId{0}, NodeId{1}, payload_of(1));  // delivered
  });
  f.simulator.run();

  ASSERT_EQ(f.delivered.size(), 1u);
  // One real crash + one real recover; the duplicated pair was a no-op.
  EXPECT_EQ(f.network.fault().transitions(), 2u);
  EXPECT_EQ(f.network.fault().total_downtime(), milliseconds(10));
}

// Same-instant events apply in insertion order (stable sort). A recover
// appended BEFORE a crash at the same timestamp is a no-op (the node is
// still up when it applies), so the node ends the instant crashed.
TEST(FaultInjector, SameInstantRecoverBeforeCrashLeavesNodeDown) {
  Fixture f;
  f.add_node(NodeId{0}, 0);
  f.add_node(NodeId{1}, 1);

  FaultSchedule s;
  s.recover(f.at(10), NodeId{1}).crash(f.at(10), NodeId{1});
  f.network.install_faults(s);

  f.simulator.schedule_at(f.at(11), [&f] {
    EXPECT_TRUE(f.network.is_crashed(NodeId{1}));
  });
  f.simulator.run();
  EXPECT_TRUE(f.network.is_crashed(NodeId{1}));
  EXPECT_EQ(f.network.fault().transitions(), 1u);  // only the crash applied
}

// ...and the opposite insertion order at the same instant: crash then
// recover leaves the node up, having completed a zero-downtime bounce.
TEST(FaultInjector, SameInstantCrashThenRecoverLeavesNodeUp) {
  Fixture f;
  f.add_node(NodeId{0}, 0);
  f.add_node(NodeId{1}, 1);

  FaultSchedule s;
  s.crash(f.at(10), NodeId{1}).recover(f.at(10), NodeId{1});
  f.network.install_faults(s);
  f.simulator.run();

  EXPECT_FALSE(f.network.is_crashed(NodeId{1}));
  EXPECT_EQ(f.network.fault().transitions(), 2u);  // both applied, in order
  EXPECT_EQ(f.network.fault().total_downtime(), Duration::zero());
}

// Immediate-API idempotence: crashing an already-crashed node and
// recovering an already-live node are silent no-ops — no transition is
// counted, no digest perturbation, and hooks do not fire.
TEST(FaultInjector, DoubleCrashAndDoubleRecoverAreNoOps) {
  Fixture f;
  f.add_node(NodeId{0}, 0);
  f.add_node(NodeId{1}, 1);

  int restarts = 0;
  f.network.set_restart_hook([&restarts](NodeId) { ++restarts; });

  f.network.crash(NodeId{1});
  const std::uint64_t digest_after_crash = f.network.fault().digest();
  f.network.crash(NodeId{1});  // no-op
  EXPECT_EQ(f.network.fault().transitions(), 1u);
  EXPECT_EQ(f.network.fault().digest(), digest_after_crash);

  f.network.recover(NodeId{1});
  EXPECT_EQ(restarts, 1);
  const std::uint64_t digest_after_recover = f.network.fault().digest();
  f.network.recover(NodeId{1});  // no-op: hook must not fire again
  EXPECT_EQ(f.network.fault().transitions(), 2u);
  EXPECT_EQ(f.network.fault().digest(), digest_after_recover);
  EXPECT_EQ(restarts, 1);
}

// The restart (amnesia) hook fires once per real crash->recover pair, at
// recovery time, and only for the recovered node.
TEST(FaultInjector, RestartHookFiresOncePerRealRecovery) {
  Fixture f;
  f.add_node(NodeId{0}, 0);
  f.add_node(NodeId{1}, 1);

  std::vector<std::pair<NodeId, TimePoint>> restarts;
  f.network.set_restart_hook([&](NodeId n) {
    restarts.emplace_back(n, f.simulator.now());
  });

  FaultSchedule s;
  s.crash_for(f.at(10), NodeId{1}, milliseconds(5))
      .crash_for(f.at(12), NodeId{1}, milliseconds(5))  // overlap: no-op pair
      .crash_for(f.at(30), NodeId{0}, milliseconds(5));
  f.network.install_faults(s);
  f.simulator.run();

  ASSERT_EQ(restarts.size(), 2u);
  EXPECT_EQ(restarts[0].first, NodeId{1});
  EXPECT_EQ(restarts[0].second, f.at(15));
  EXPECT_EQ(restarts[1].first, NodeId{0});
  EXPECT_EQ(restarts[1].second, f.at(35));
  // Two real pairs of 5 ms each; the overlapped pair contributed nothing.
  EXPECT_EQ(f.network.fault().total_downtime(), milliseconds(10));
}

TEST(FaultInjector, DropReasonNames) {
  EXPECT_STREQ(drop_reason_name(DropReason::kNone), "none");
  EXPECT_STREQ(drop_reason_name(DropReason::kCrashedSource), "crashed_src");
  EXPECT_STREQ(drop_reason_name(DropReason::kCrashedDest), "crashed_dst");
  EXPECT_STREQ(drop_reason_name(DropReason::kPartition), "partition");
}

}  // namespace
}  // namespace domino::net
