// End-to-end: the full Domino protocol stack over real TCP sockets on
// loopback — three replicas and a client in one process, real clocks, real
// framing. The identical protocol code runs in the simulator for the
// evaluation; this proves the transport abstraction holds.
#include <gtest/gtest.h>

#include "core/client.h"
#include "core/replica.h"
#include "net/tcp/tcp_context.h"

namespace domino::core {
namespace {

using net::tcp::Endpoint;
using net::tcp::EventLoop;
using net::tcp::TcpContext;

void pump(EventLoop& loop, const std::function<bool()>& done,
          Duration deadline = seconds(10)) {
  const TimePoint until = loop.now() + deadline;
  while (!done() && loop.now() < until) {
    loop.poll(milliseconds(10));
  }
}

struct TcpDomino : ::testing::Test {
  EventLoop loop;
  TcpContext context{loop};
  std::vector<NodeId> rids{NodeId{0}, NodeId{1}, NodeId{2}};
  std::vector<std::unique_ptr<Replica>> replicas;
  std::unique_ptr<Client> client;

  void SetUp() override {
    for (NodeId r : rids) context.host_node(r, {"127.0.0.1", 0});
    context.host_node(NodeId{100}, {"127.0.0.1", 0});

    ReplicaConfig rc;
    // Real loopback RTTs are tens of microseconds; shrink the timescales.
    rc.heartbeat_interval = milliseconds(5);
    rc.prober.probe_interval = milliseconds(5);
    rc.prober.window = milliseconds(500);
    for (NodeId r : rids) {
      replicas.push_back(std::make_unique<Replica>(r, context, rids, rids[0], rc));
      replicas.back()->attach();
      replicas.back()->start();
    }
    ClientConfig cc;
    cc.prober.probe_interval = milliseconds(5);
    cc.prober.window = milliseconds(500);
    cc.additional_delay = milliseconds(2);  // generous slack vs OS jitter
    client = std::make_unique<Client>(NodeId{100}, context, rids, cc);
    client->attach();
    client->start();
    // Warm the probers with real round trips.
    pump(loop, [] { return false; }, milliseconds(300));
  }
};

TEST_F(TcpDomino, EstimatesFromRealSockets) {
  const auto est = client->estimates();
  ASSERT_NE(est.dfp, Duration::max());
  ASSERT_NE(est.dm, Duration::max());
  // Loopback: everything is sub-millisecond-ish (allow slack for CI noise).
  EXPECT_LT(est.dfp.millis(), 50.0);
}

TEST_F(TcpDomino, CommitsOverRealTcp) {
  int committed = 0;
  client->set_commit_hook([&](const RequestId&, TimePoint, TimePoint) { ++committed; });
  for (std::uint64_t s = 0; s < 10; ++s) {
    sm::Command cmd;
    cmd.id = RequestId{client->id(), s};
    cmd.key = "key" + std::to_string(s);
    cmd.value = "val" + std::to_string(s);
    client->submit(cmd);
  }
  pump(loop, [&] { return committed >= 10; });
  EXPECT_EQ(committed, 10);
}

TEST_F(TcpDomino, ReplicasConvergeAndExecute) {
  int committed = 0;
  client->set_commit_hook([&](const RequestId&, TimePoint, TimePoint) { ++committed; });
  for (std::uint64_t s = 0; s < 20; ++s) {
    sm::Command cmd;
    cmd.id = RequestId{client->id(), s};
    cmd.key = "k" + std::to_string(s % 5);
    cmd.value = "v" + std::to_string(s);
    client->submit(cmd);
  }
  pump(loop, [&] { return committed >= 20; });
  ASSERT_EQ(committed, 20);
  // Give the no-op frontier a moment to pass the last timestamps.
  pump(loop, [&] {
    return replicas[0]->store().applied_count() >= 20 &&
           replicas[1]->store().applied_count() >= 20 &&
           replicas[2]->store().applied_count() >= 20;
  });
  const auto& ref = replicas[0]->store().items();
  EXPECT_EQ(ref.size(), 5u);
  for (const auto& r : replicas) {
    EXPECT_EQ(r->store().items(), ref);
    EXPECT_EQ(r->store().applied_count(), 20u);
  }
}

}  // namespace
}  // namespace domino::core
