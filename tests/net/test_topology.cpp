#include "net/topology.h"

#include <gtest/gtest.h>

namespace domino::net {
namespace {

TEST(Topology, GlobeMatchesPaperTable1) {
  const Topology t = Topology::globe();
  EXPECT_EQ(t.size(), 6u);
  // Spot checks against Table 1.
  EXPECT_EQ(t.rtt(t.index_of("VA"), t.index_of("WA")), milliseconds(67));
  EXPECT_EQ(t.rtt(t.index_of("VA"), t.index_of("NSW")), milliseconds(196));
  EXPECT_EQ(t.rtt(t.index_of("WA"), t.index_of("PR")), milliseconds(136));
  EXPECT_EQ(t.rtt(t.index_of("PR"), t.index_of("NSW")), milliseconds(234));
  EXPECT_EQ(t.rtt(t.index_of("SG"), t.index_of("HK")), milliseconds(35));
}

TEST(Topology, NorthAmericaMatchesPaperTable4) {
  const Topology t = Topology::north_america();
  EXPECT_EQ(t.size(), 9u);
  EXPECT_EQ(t.rtt(t.index_of("VA"), t.index_of("TX")), milliseconds(27));
  EXPECT_EQ(t.rtt(t.index_of("VA"), t.index_of("WA")), milliseconds(67));
  EXPECT_EQ(t.rtt(t.index_of("IA"), t.index_of("IL")), milliseconds(8));
  EXPECT_EQ(t.rtt(t.index_of("QC"), t.index_of("TRT")), milliseconds(11));
  EXPECT_EQ(t.rtt(t.index_of("CA"), t.index_of("WA")), milliseconds(23));
}

TEST(Topology, Symmetric) {
  const Topology t = Topology::globe();
  for (std::size_t i = 0; i < t.size(); ++i) {
    for (std::size_t j = 0; j < t.size(); ++j) {
      EXPECT_EQ(t.rtt(i, j), t.rtt(j, i));
    }
  }
}

TEST(Topology, IntraDcRttIsSmall) {
  const Topology t = Topology::globe();
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t.rtt(i, i), microseconds(500));
  }
}

TEST(Topology, OwdIsHalfRtt) {
  const Topology t = Topology::globe();
  EXPECT_EQ(t.owd(0, 1) * 2, t.rtt(0, 1));
}

TEST(Topology, UnknownNameThrows) {
  const Topology t = Topology::globe();
  EXPECT_THROW(t.index_of("MOON"), std::out_of_range);
}

TEST(Topology, BadIndexThrows) {
  const Topology t = Topology::globe();
  EXPECT_THROW(t.rtt(0, 99), std::out_of_range);
}

TEST(Topology, CustomConstructionValidates) {
  EXPECT_THROW(Topology({"A", "B"}, {{0.0}}), std::invalid_argument);
  EXPECT_THROW(Topology({"A"}, {{0.0, 1.0}}), std::invalid_argument);
}

}  // namespace
}  // namespace domino::net
