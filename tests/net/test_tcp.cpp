// Real-socket transport tests (loopback): framing, ordering, large
// payloads, lazy connects, hello handshake, and disconnect handling.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "measure/messages.h"
#include "net/tcp/tcp_host.h"

namespace domino::net::tcp {
namespace {

/// Drive the loop until `done()` or the deadline (real time) expires.
void pump(EventLoop& loop, const std::function<bool()>& done,
          Duration deadline = seconds(5)) {
  const TimePoint until = loop.now() + deadline;
  while (!done() && loop.now() < until) {
    loop.poll(milliseconds(20));
  }
}

struct TcpPair : ::testing::Test {
  EventLoop loop;
  TcpHost a{loop, NodeId{1}, {"127.0.0.1", 0}};
  TcpHost b{loop, NodeId{2}, {"127.0.0.1", 0}};
  std::vector<std::pair<NodeId, wire::Payload>> a_rx, b_rx;

  void SetUp() override {
    a.add_peer(NodeId{2}, {"127.0.0.1", b.port()});
    b.add_peer(NodeId{1}, {"127.0.0.1", a.port()});
    a.set_receive_callback(
        [this](NodeId from, wire::Payload p) { a_rx.emplace_back(from, std::move(p)); });
    b.set_receive_callback(
        [this](NodeId from, wire::Payload p) { b_rx.emplace_back(from, std::move(p)); });
  }
};

TEST_F(TcpPair, ListenPortsAssigned) {
  EXPECT_GT(a.port(), 0);
  EXPECT_GT(b.port(), 0);
  EXPECT_NE(a.port(), b.port());
}

TEST_F(TcpPair, MessageRoundTrip) {
  measure::Probe probe;
  probe.seq = 42;
  probe.sender_local_time = TimePoint::epoch() + milliseconds(7);
  ASSERT_TRUE(a.send_message(NodeId{2}, probe));
  pump(loop, [&] { return !b_rx.empty(); });
  ASSERT_EQ(b_rx.size(), 1u);
  EXPECT_EQ(b_rx[0].first, NodeId{1});
  const auto decoded = wire::decode_message<measure::Probe>(b_rx[0].second);
  EXPECT_EQ(decoded.seq, 42u);
  EXPECT_EQ(decoded.sender_local_time, probe.sender_local_time);
}

TEST_F(TcpPair, BidirectionalOverSingleConnection) {
  measure::Probe probe;
  probe.seq = 1;
  ASSERT_TRUE(a.send_message(NodeId{2}, probe));
  pump(loop, [&] { return !b_rx.empty(); });
  // b replies over the same (inbound) connection.
  measure::ProbeReply reply;
  reply.seq = 1;
  ASSERT_TRUE(b.send_message(NodeId{1}, reply));
  pump(loop, [&] { return !a_rx.empty(); });
  ASSERT_EQ(a_rx.size(), 1u);
  EXPECT_EQ(a_rx[0].first, NodeId{2});
  EXPECT_EQ(wire::peek_type(a_rx[0].second), wire::MessageType::kProbeReply);
}

TEST_F(TcpPair, OrderPreservedUnderBurst) {
  const int kCount = 500;
  for (int i = 0; i < kCount; ++i) {
    measure::Probe p;
    p.seq = static_cast<std::uint64_t>(i);
    ASSERT_TRUE(a.send_message(NodeId{2}, p));
  }
  pump(loop, [&] { return b_rx.size() >= kCount; });
  ASSERT_EQ(b_rx.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    const auto p = wire::decode_message<measure::Probe>(b_rx[(std::size_t)i].second);
    EXPECT_EQ(p.seq, static_cast<std::uint64_t>(i));
  }
}

TEST_F(TcpPair, LargeFrameSurvivesFragmentation) {
  // A ~2 MB frame necessarily crosses many TCP segments and socket-buffer
  // boundaries.
  Rng rng(5);
  wire::ByteWriter w;
  w.u16(static_cast<std::uint16_t>(wire::MessageType::kProbe));  // fake envelope
  std::vector<std::uint8_t> blob(2'000'000);
  for (auto& byte : blob) byte = static_cast<std::uint8_t>(rng.next_u64());
  w.bytes(blob);
  const wire::Payload payload = w.buffer();
  ASSERT_TRUE(a.send(NodeId{2}, payload));
  pump(loop, [&] { return !b_rx.empty(); }, seconds(10));
  ASSERT_EQ(b_rx.size(), 1u);
  EXPECT_EQ(b_rx[0].second, payload);
}

TEST_F(TcpPair, UnknownPeerSendFails) {
  EXPECT_FALSE(a.send(NodeId{99}, wire::Payload{1, 2, 3}));
}

TEST_F(TcpPair, DisconnectThenReconnect) {
  measure::Probe p;
  p.seq = 1;
  ASSERT_TRUE(a.send_message(NodeId{2}, p));
  pump(loop, [&] { return !b_rx.empty(); });
  a.disconnect(NodeId{2});
  loop.poll(milliseconds(50));
  // Sending again lazily reopens the connection.
  p.seq = 2;
  ASSERT_TRUE(a.send_message(NodeId{2}, p));
  pump(loop, [&] { return b_rx.size() >= 2; });
  ASSERT_GE(b_rx.size(), 2u);
  EXPECT_EQ(wire::decode_message<measure::Probe>(b_rx.back().second).seq, 2u);
}

TEST(TcpMesh, ThreeHostsAllPairs) {
  EventLoop loop;
  TcpHost h0(loop, NodeId{0}, {"127.0.0.1", 0});
  TcpHost h1(loop, NodeId{1}, {"127.0.0.1", 0});
  TcpHost h2(loop, NodeId{2}, {"127.0.0.1", 0});
  TcpHost* hosts[3] = {&h0, &h1, &h2};
  int received[3] = {0, 0, 0};
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      if (i == j) continue;
      hosts[i]->add_peer(NodeId{(std::uint32_t)j}, {"127.0.0.1", hosts[j]->port()});
    }
    hosts[i]->set_receive_callback(
        [&received, i](NodeId, wire::Payload) { ++received[i]; });
  }
  measure::Probe p;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      if (i == j) continue;
      p.seq = static_cast<std::uint64_t>(i * 3 + j);
      ASSERT_TRUE(hosts[i]->send_message(NodeId{(std::uint32_t)j}, p));
    }
  }
  pump(loop, [&] { return received[0] >= 2 && received[1] >= 2 && received[2] >= 2; });
  EXPECT_EQ(received[0], 2);
  EXPECT_EQ(received[1], 2);
  EXPECT_EQ(received[2], 2);
}

TEST(TcpEventLoop, TimersFireInOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule(milliseconds(30), [&] { order.push_back(3); });
  loop.schedule(milliseconds(10), [&] { order.push_back(1); });
  loop.schedule(milliseconds(20), [&] { order.push_back(2); });
  pump(loop, [&] { return order.size() == 3; });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TcpEventLoop, MonotonicClock) {
  EventLoop loop;
  const TimePoint t0 = loop.now();
  loop.poll(milliseconds(10));
  EXPECT_GE(loop.now(), t0);
}

}  // namespace
}  // namespace domino::net::tcp
