#include "net/network.h"

#include <gtest/gtest.h>

#include <vector>

namespace domino::net {
namespace {

Topology two_dc() {
  return Topology{{"A", "B"}, {{0.0, 10.0}, {10.0, 0.0}}};
}

wire::Payload payload_of(std::uint8_t tag) { return wire::Payload{tag}; }

struct Fixture {
  sim::Simulator simulator;
  Network network;
  std::vector<std::pair<NodeId, std::uint8_t>> delivered;  // (dst, first byte)
  std::vector<TimePoint> delivery_times;

  explicit Fixture(Topology topo = two_dc(), std::uint64_t seed = 1)
      : network(simulator, std::move(topo), seed) {}

  void add_node(NodeId id, std::size_t dc) {
    network.register_node(id, dc, [this, id](const Packet& p) {
      delivered.emplace_back(id, p.payload.empty() ? 0 : p.payload[0]);
      delivery_times.push_back(simulator.now());
    });
  }
};

TEST(Network, DeliversWithLinkDelay) {
  Fixture f;
  f.add_node(NodeId{0}, 0);
  f.add_node(NodeId{1}, 1);
  f.network.send(NodeId{0}, NodeId{1}, payload_of(7));
  f.simulator.run();
  ASSERT_EQ(f.delivered.size(), 1u);
  EXPECT_EQ(f.delivered[0].first, NodeId{1});
  EXPECT_EQ(f.delivered[0].second, 7);
  // Default links are constant OWD = RTT/2 = 5 ms.
  EXPECT_EQ(f.delivery_times[0], TimePoint::epoch() + milliseconds(5));
}

TEST(Network, IntraDcDeliveryIsFast) {
  Fixture f;
  f.add_node(NodeId{0}, 0);
  f.add_node(NodeId{1}, 0);
  f.network.send(NodeId{0}, NodeId{1}, payload_of(1));
  f.simulator.run();
  ASSERT_EQ(f.delivery_times.size(), 1u);
  EXPECT_EQ(f.delivery_times[0], TimePoint::epoch() + microseconds(250));
}

TEST(Network, SelfSendWorks) {
  Fixture f;
  f.add_node(NodeId{0}, 0);
  f.network.send(NodeId{0}, NodeId{0}, payload_of(9));
  f.simulator.run();
  ASSERT_EQ(f.delivered.size(), 1u);
}

TEST(Network, FifoPerChannelEvenWithJitter) {
  Fixture f;
  f.add_node(NodeId{0}, 0);
  f.add_node(NodeId{1}, 1);
  // Heavy jitter would reorder without the FIFO clamp.
  JitterParams p;
  p.jitter_sigma = 2.5;
  p.spike_prob = 0.05;
  f.network.use_default_links(p);
  for (std::uint8_t i = 0; i < 100; ++i) {
    f.network.send(NodeId{0}, NodeId{1}, payload_of(i));
  }
  f.simulator.run();
  ASSERT_EQ(f.delivered.size(), 100u);
  for (std::uint8_t i = 0; i < 100; ++i) EXPECT_EQ(f.delivered[i].second, i);
  // Delivery times strictly increase on a FIFO channel.
  for (std::size_t i = 1; i < f.delivery_times.size(); ++i) {
    EXPECT_GT(f.delivery_times[i], f.delivery_times[i - 1]);
  }
}

TEST(Network, IndependentChannelsCanReorder) {
  Fixture f;
  f.add_node(NodeId{0}, 0);
  f.add_node(NodeId{1}, 0);
  f.add_node(NodeId{2}, 1);
  // Give 0->dc1 a bigger delay than 1->dc1 by scheduling order: messages
  // from different sources are not FIFO-constrained relative to each other.
  f.network.send(NodeId{0}, NodeId{2}, payload_of(1));
  f.network.send(NodeId{1}, NodeId{2}, payload_of(2));
  f.simulator.run();
  EXPECT_EQ(f.delivered.size(), 2u);
}

TEST(Network, CrashedDestinationDrops) {
  Fixture f;
  f.add_node(NodeId{0}, 0);
  f.add_node(NodeId{1}, 1);
  f.network.crash(NodeId{1});
  f.network.send(NodeId{0}, NodeId{1}, payload_of(1));
  f.simulator.run();
  EXPECT_TRUE(f.delivered.empty());
  EXPECT_EQ(f.network.packets_dropped(), 1u);
}

TEST(Network, CrashedSourceDrops) {
  Fixture f;
  f.add_node(NodeId{0}, 0);
  f.add_node(NodeId{1}, 1);
  f.network.crash(NodeId{0});
  f.network.send(NodeId{0}, NodeId{1}, payload_of(1));
  f.simulator.run();
  EXPECT_TRUE(f.delivered.empty());
}

TEST(Network, RecoverRestoresDelivery) {
  Fixture f;
  f.add_node(NodeId{0}, 0);
  f.add_node(NodeId{1}, 1);
  f.network.crash(NodeId{1});
  f.network.send(NodeId{0}, NodeId{1}, payload_of(1));
  f.network.recover(NodeId{1});
  f.network.send(NodeId{0}, NodeId{1}, payload_of(2));
  f.simulator.run();
  ASSERT_EQ(f.delivered.size(), 1u);
  EXPECT_EQ(f.delivered[0].second, 2);
}

TEST(Network, CrashMidFlightDropsAtDelivery) {
  Fixture f;
  f.add_node(NodeId{0}, 0);
  f.add_node(NodeId{1}, 1);
  f.network.send(NodeId{0}, NodeId{1}, payload_of(1));
  f.simulator.schedule_after(milliseconds(1), [&] { f.network.crash(NodeId{1}); });
  f.simulator.run();
  EXPECT_TRUE(f.delivered.empty());
}

TEST(Network, ReceiveServiceTimeSerializesDelivery) {
  Fixture f;
  f.add_node(NodeId{0}, 0);
  f.add_node(NodeId{1}, 1);
  f.network.set_receive_service_time(NodeId{1}, milliseconds(2));
  for (int i = 0; i < 5; ++i) f.network.send(NodeId{0}, NodeId{1}, payload_of(1));
  f.simulator.run();
  ASSERT_EQ(f.delivery_times.size(), 5u);
  // All arrive at ~5 ms; the CPU then processes one every 2 ms.
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_GE(f.delivery_times[i] - f.delivery_times[i - 1], milliseconds(2));
  }
  EXPECT_GE(f.delivery_times[4], TimePoint::epoch() + milliseconds(5 + 10));
}

TEST(Network, EgressBandwidthAddsSerializationDelay) {
  Fixture f;
  f.add_node(NodeId{0}, 0);
  f.add_node(NodeId{1}, 1);
  // 1 kbit/s: a ~65-byte frame takes ~0.5 s to serialize.
  f.network.set_egress_bandwidth_bps(NodeId{0}, 1000.0);
  f.network.send(NodeId{0}, NodeId{1}, payload_of(1));
  f.simulator.run();
  ASSERT_EQ(f.delivery_times.size(), 1u);
  EXPECT_GT(f.delivery_times[0], TimePoint::epoch() + milliseconds(400));
}

TEST(Network, TrafficCountersAdvance) {
  Fixture f;
  f.add_node(NodeId{0}, 0);
  f.add_node(NodeId{1}, 1);
  f.network.send(NodeId{0}, NodeId{1}, payload_of(1));
  EXPECT_EQ(f.network.packets_sent(), 1u);
  EXPECT_EQ(f.network.bytes_sent(), 1 + kFrameOverheadBytes);
}

TEST(Network, DuplicateRegistrationThrows) {
  Fixture f;
  f.add_node(NodeId{0}, 0);
  EXPECT_THROW(f.network.register_node(NodeId{0}, 0, [](const Packet&) {}),
               std::invalid_argument);
}

TEST(Network, UnknownNodeThrows) {
  Fixture f;
  f.add_node(NodeId{0}, 0);
  EXPECT_THROW(f.network.send(NodeId{0}, NodeId{9}, payload_of(1)), std::out_of_range);
  EXPECT_THROW(f.network.dc_of(NodeId{9}), std::out_of_range);
}

TEST(Network, LinkModelOverride) {
  Fixture f;
  f.add_node(NodeId{0}, 0);
  f.add_node(NodeId{1}, 1);
  f.network.set_link_model(0, 1, std::make_unique<ConstantLatency>(milliseconds(99)));
  f.network.send(NodeId{0}, NodeId{1}, payload_of(1));
  f.simulator.run();
  ASSERT_EQ(f.delivery_times.size(), 1u);
  EXPECT_EQ(f.delivery_times[0], TimePoint::epoch() + milliseconds(99));
}

TEST(Network, AsymmetricLinksPossible) {
  Fixture f;
  f.add_node(NodeId{0}, 0);
  f.add_node(NodeId{1}, 1);
  f.network.set_link_model(0, 1, std::make_unique<ConstantLatency>(milliseconds(2)));
  f.network.set_link_model(1, 0, std::make_unique<ConstantLatency>(milliseconds(8)));
  f.network.send(NodeId{0}, NodeId{1}, payload_of(1));
  f.simulator.run();
  const TimePoint fwd = f.delivery_times[0];
  f.network.send(NodeId{1}, NodeId{0}, payload_of(2));
  f.simulator.run();
  EXPECT_EQ(fwd - TimePoint::epoch(), milliseconds(2));
  EXPECT_EQ(f.delivery_times[1] - fwd, milliseconds(8));
}

}  // namespace
}  // namespace domino::net
