#include "net/latency_model.h"

#include <gtest/gtest.h>

#include "common/stats.h"

namespace domino::net {
namespace {

TEST(ConstantLatency, AlwaysBase) {
  ConstantLatency m(milliseconds(33));
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(m.sample(TimePoint::epoch(), rng), milliseconds(33));
  }
  EXPECT_EQ(m.base(TimePoint::epoch()), milliseconds(33));
}

TEST(JitterLatency, NeverBelowBase) {
  JitterParams p;
  JitterLatency m(milliseconds(40), p);
  Rng rng(2);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_GE(m.sample(TimePoint::epoch(), rng), milliseconds(40));
  }
}

TEST(JitterLatency, JitterIsSmallRelativeToBase) {
  // Matches the paper's Section 3 observation: variance small vs the
  // propagation floor.
  JitterParams p;
  p.spike_prob = 0.0;
  JitterLatency m(milliseconds(40), p);
  Rng rng(3);
  StatAccumulator s;
  for (int i = 0; i < 10'000; ++i) s.add(m.sample(TimePoint::epoch(), rng));
  EXPECT_LT(s.percentile(95), 41.5);  // p95 jitter under 1.5 ms
  EXPECT_GE(s.min(), 40.0);
}

TEST(JitterLatency, SpikesAppearAtConfiguredRate) {
  JitterParams p;
  p.spike_prob = 0.01;
  p.spike_mean = milliseconds(50);
  JitterLatency m(milliseconds(10), p);
  Rng rng(4);
  int big = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (m.sample(TimePoint::epoch(), rng) > milliseconds(20)) ++big;
  }
  // Roughly 1% of samples spike (some spikes are small; allow slack).
  EXPECT_GT(big, n / 300);
  EXPECT_LT(big, n / 50);
}

TEST(JitterLatency, SetBaseTakesEffect) {
  JitterParams p;
  p.spike_prob = 0;
  JitterLatency m(milliseconds(10), p);
  m.set_base(milliseconds(70));
  Rng rng(5);
  EXPECT_GE(m.sample(TimePoint::epoch(), rng), milliseconds(70));
}

TEST(ScheduledLatency, FollowsSchedule) {
  JitterParams p;
  p.spike_prob = 0;
  ScheduledLatency m(
      {{TimePoint::epoch(), milliseconds(15)},
       {TimePoint::epoch() + seconds(10), milliseconds(25)},
       {TimePoint::epoch() + seconds(20), milliseconds(35)}},
      p);
  EXPECT_EQ(m.base(TimePoint::epoch()), milliseconds(15));
  EXPECT_EQ(m.base(TimePoint::epoch() + seconds(9)), milliseconds(15));
  EXPECT_EQ(m.base(TimePoint::epoch() + seconds(10)), milliseconds(25));
  EXPECT_EQ(m.base(TimePoint::epoch() + seconds(30)), milliseconds(35));
  Rng rng(6);
  EXPECT_GE(m.sample(TimePoint::epoch() + seconds(15), rng), milliseconds(25));
}

TEST(ScheduledLatency, SingleStepActsConstant) {
  JitterParams p;
  p.spike_prob = 0;
  ScheduledLatency m({{TimePoint::epoch(), milliseconds(10)}}, p);
  EXPECT_EQ(m.base(TimePoint::epoch() + seconds(100)), milliseconds(10));
}

TEST(ScheduledLatency, BoundaryAndOutOfRangeLookups) {
  JitterParams p;
  p.spike_prob = 0;
  // First step deliberately NOT at the epoch: queries before it must fall
  // back to the first step instead of reading past the front.
  ScheduledLatency m(
      {{TimePoint::epoch() + seconds(5), milliseconds(15)},
       {TimePoint::epoch() + seconds(10), milliseconds(25)},
       {TimePoint::epoch() + seconds(20), milliseconds(35)}},
      p);
  // Before the first step.
  EXPECT_EQ(m.base(TimePoint::epoch()), milliseconds(15));
  EXPECT_EQ(m.base(TimePoint::epoch() + seconds(5) - nanoseconds(1)), milliseconds(15));
  // Exactly at each step boundary the new value applies.
  EXPECT_EQ(m.base(TimePoint::epoch() + seconds(5)), milliseconds(15));
  EXPECT_EQ(m.base(TimePoint::epoch() + seconds(10)), milliseconds(25));
  EXPECT_EQ(m.base(TimePoint::epoch() + seconds(20)), milliseconds(35));
  // One tick either side of an interior boundary.
  EXPECT_EQ(m.base(TimePoint::epoch() + seconds(10) - nanoseconds(1)), milliseconds(15));
  EXPECT_EQ(m.base(TimePoint::epoch() + seconds(10) + nanoseconds(1)), milliseconds(25));
  // Far past the last step.
  EXPECT_EQ(m.base(TimePoint::epoch() + seconds(10'000)), milliseconds(35));
  // sample() honours the same step selection.
  Rng rng(7);
  EXPECT_GE(m.sample(TimePoint::epoch() + seconds(20), rng), milliseconds(35));
  EXPECT_GE(m.sample(TimePoint::epoch(), rng), milliseconds(15));
}

TEST(ScheduledLatency, RttScheduleStepsHalvesAndOffsets) {
  const auto steps = rtt_schedule_steps(
      {{Duration::zero(), milliseconds(30)}, {seconds(15), milliseconds(50)}});
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_EQ(steps[0].from, TimePoint::epoch());
  EXPECT_EQ(steps[0].base, milliseconds(15));
  EXPECT_EQ(steps[1].from, TimePoint::epoch() + seconds(15));
  EXPECT_EQ(steps[1].base, milliseconds(25));
}

}  // namespace
}  // namespace domino::net
