// Amnesia-aware crash recovery suite (ctest -L recovery).
//
// Three layers of coverage:
//   1. Scenario-driven amnesia sweep — every protocol runs with durable
//      state and a staggered fault schedule that crashes each replica once
//      (amnesiacally: the restart hook wipes volatile state, the replica
//      replays its durable image and catches up from live peers). The suite
//      asserts liveness, store convergence of the recovered replicas,
//      populated recovery accounting, and run-to-run determinism (equal
//      fault digests).
//   2. Fault-free durability control — enabling the durable store with a
//      non-zero sync latency must not break a healthy run or fabricate
//      recovery events.
//   3. Negative test — a scripted Multi-Paxos schedule in which the leader's
//      durable log is deliberately weakened (appends silently dropped, a
//      forgotten fsync). A client-acknowledged commit is then lost across
//      an amnesiac leader restart, and the lost-commit consistency checker
//      must catch it; the identical schedule with intact durability passes.
#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "harness/run_report.h"
#include "harness/runner.h"
#include "paxos/client.h"
#include "paxos/replica.h"
#include "recovery/durable.h"
#include "support/fixtures.h"

namespace domino::harness {
namespace {

Scenario amnesia_scenario(std::uint64_t seed) {
  Scenario s;
  s.topology = net::Topology::north_america();
  s.replica_dcs = {s.topology.index_of("WA"), s.topology.index_of("VA"),
                   s.topology.index_of("QC")};
  s.client_dcs = {s.topology.index_of("IA"), s.topology.index_of("TX")};
  s.rps = 30;
  s.warmup = seconds(1);
  s.measure = seconds(3);
  // Generous drain window: a request submitted at the end of the window may
  // still ride out a crash plus several retries.
  s.cooldown = seconds(4);
  s.seed = seed;
  s.workload.num_keys = 40;
  s.workload.zipf_alpha = 0.75;
  s.client_request_timeout = milliseconds(300);
  s.client_max_retries = 8;
  s.amnesia_crashes = true;
  s.sync_latency = milliseconds(2);
  // Windowed telemetry + steady-state detector: every sweep run reports a
  // time-to-steady-state per fault instant (commit rate back within
  // tolerance of the pre-fault baseline for K consecutive windows).
  s.timeseries_interval = milliseconds(150);
  s.slo.steady_metric = "client.committed";
  s.slo.steady_tolerance = 0.75;
  s.slo.steady_windows = 2;
  return s;
}

/// Crash every replica once, staggered so at most one is down at any time
/// (the majority stays live) and each window stays well below the 500 ms
/// failure detector — no revoke/takeover rounds trigger mid-sweep, the
/// crashes exercise pure amnesiac recovery.
net::FaultSchedule amnesia_schedule(const Scenario& s) {
  net::FaultSchedule f;
  const TimePoint w0 = TimePoint::epoch() + s.warmup;
  for (std::size_t i = 0; i < s.replica_dcs.size(); ++i) {
    f.crash_for(w0 + milliseconds(400 + 900 * static_cast<std::int64_t>(i)),
                NodeId{static_cast<std::uint32_t>(i)},
                milliseconds(250 + 25 * static_cast<std::int64_t>(i)));
  }
  return f;
}

struct RecoveryCase {
  Protocol protocol;
  std::uint64_t seed;
};

class AmnesiaSweep : public ::testing::TestWithParam<RecoveryCase> {};

TEST_P(AmnesiaSweep, RecoversConvergesAndStaysDeterministic) {
  const RecoveryCase c = GetParam();
  Scenario s = amnesia_scenario(c.seed);
  s.faults = amnesia_schedule(s);

  const RunResult a = run_protocol(c.protocol, s);
  const RunResult b = run_protocol(c.protocol, s);

  // -- Liveness: every crash healed, retries were generous; everything the
  // clients submitted commits.
  EXPECT_GT(a.committed, 0u);
  EXPECT_EQ(a.client_abandoned, 0u);
  EXPECT_EQ(a.client_inflight_end, 0u);
  EXPECT_EQ(a.submitted,
            a.client_committed + a.client_abandoned + a.client_inflight_end);
  EXPECT_GT(a.packets_dropped, 0u);

  // -- Recovery actually happened, and its accounting is populated: every
  // replica restarted amnesiacally, replayed a non-empty durable image, and
  // rejoined.
  EXPECT_EQ(a.recovery.restarts, s.replica_dcs.size());
  EXPECT_GT(a.recovery.persisted_records, 0u);
  EXPECT_GT(a.recovery.persisted_bytes, 0u);
  EXPECT_GT(a.recovery.replayed_records, 0u);
  EXPECT_GT(a.recovery.rejoin_ns_total, 0);
  EXPECT_GT(a.recovery_downtime_ns, 0);

  // -- Consistency: every replica recovered long before the run ended, so
  // all stores — including the restarted ones — converge.
  ASSERT_EQ(a.replica_store_fingerprints.size(), s.replica_dcs.size());
  for (std::size_t i = 1; i < a.replica_store_fingerprints.size(); ++i) {
    EXPECT_EQ(a.replica_store_fingerprints[i], a.replica_store_fingerprints[0])
        << "replica " << i << " diverged after amnesiac recovery";
  }

  // -- Determinism: same seed + schedule => byte-identical fault/drop
  // behaviour and identical end-to-end results, including the recovery
  // accounting.
  EXPECT_EQ(a.fault_digest, b.fault_digest);
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.packets_dropped, b.packets_dropped);
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.client_committed, b.client_committed);
  EXPECT_EQ(a.client_retries, b.client_retries);
  EXPECT_EQ(a.replica_store_fingerprints, b.replica_store_fingerprints);
  EXPECT_EQ(a.recovery.restarts, b.recovery.restarts);
  EXPECT_EQ(a.recovery.persisted_records, b.recovery.persisted_records);
  EXPECT_EQ(a.recovery.persisted_bytes, b.recovery.persisted_bytes);
  EXPECT_EQ(a.recovery.replayed_records, b.recovery.replayed_records);
  EXPECT_EQ(a.recovery.replayed_bytes, b.recovery.replayed_bytes);
  EXPECT_EQ(a.recovery.catchup_installs, b.recovery.catchup_installs);
  EXPECT_EQ(a.recovery.catchup_bytes, b.recovery.catchup_bytes);
  EXPECT_EQ(a.recovery.rejoin_ns_total, b.recovery.rejoin_ns_total);
  EXPECT_EQ(a.recovery_downtime_ns, b.recovery_downtime_ns);

  // -- Time-to-steady-state: the SLO engine reports a finite settle time
  // for every crash and recovery instant (the commit rate returns to the
  // pre-fault baseline before the load window ends), and the verdicts are
  // deterministic across same-seed runs.
  ASSERT_NE(a.timeseries, nullptr);
  ASSERT_EQ(a.slo.steady.size(), 2 * s.replica_dcs.size());
  for (const obs::SteadyStateResult& st : a.slo.steady) {
    EXPECT_TRUE(st.reached)
        << "no steady state after " << st.fault.kind << " of "
        << st.fault.node.to_string() << " at " << st.fault.at.to_string();
    EXPECT_GT(st.time_to_steady, Duration::zero());
    EXPECT_GT(st.baseline, 0.0);
  }
  ASSERT_EQ(b.slo.steady.size(), a.slo.steady.size());
  for (std::size_t i = 0; i < a.slo.steady.size(); ++i) {
    EXPECT_EQ(a.slo.steady[i].reached, b.slo.steady[i].reached);
    EXPECT_EQ(a.slo.steady[i].time_to_steady.nanos(),
              b.slo.steady[i].time_to_steady.nanos());
    EXPECT_EQ(a.slo.steady[i].settle_window, b.slo.steady[i].settle_window);
  }

  // -- The recovery.* metrics mirror the aggregate accounting.
  ASSERT_NE(a.metrics, nullptr);
  const obs::Counter* restarts = a.metrics->find_counter("recovery.restarts");
  ASSERT_NE(restarts, nullptr);
  EXPECT_EQ(restarts->value(), a.recovery.restarts);
  const obs::Counter* persisted = a.metrics->find_counter("recovery.persist_records");
  ASSERT_NE(persisted, nullptr);
  EXPECT_EQ(persisted->value(), a.recovery.persisted_records);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, AmnesiaSweep,
    ::testing::Values(
        RecoveryCase{Protocol::kMultiPaxos, 21}, RecoveryCase{Protocol::kMultiPaxos, 22},
        RecoveryCase{Protocol::kMencius, 21}, RecoveryCase{Protocol::kMencius, 22},
        RecoveryCase{Protocol::kEPaxos, 21}, RecoveryCase{Protocol::kEPaxos, 22},
        RecoveryCase{Protocol::kFastPaxos, 21}, RecoveryCase{Protocol::kFastPaxos, 22},
        RecoveryCase{Protocol::kDomino, 21}, RecoveryCase{Protocol::kDomino, 22}),
    [](const ::testing::TestParamInfo<RecoveryCase>& info) {
      std::string name = protocol_name(info.param.protocol);
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name + "_amnesia" + std::to_string(info.param.seed);
    });

// Fault-free control: durable storage with a non-zero sync latency slows
// the commit path but must not break a healthy run or fabricate restarts.
TEST(RecoveryControl, FaultFreeDurableRunStaysHealthy) {
  Scenario s = amnesia_scenario(31);
  ASSERT_TRUE(s.faults.empty());
  for (const Protocol p :
       {Protocol::kMultiPaxos, Protocol::kMencius, Protocol::kEPaxos,
        Protocol::kFastPaxos, Protocol::kDomino}) {
    const RunResult r = run_protocol(p, s);
    EXPECT_GT(r.committed, 0u) << protocol_name(p);
    EXPECT_EQ(r.submitted, r.client_committed) << protocol_name(p);
    EXPECT_EQ(r.recovery.restarts, 0u) << protocol_name(p);
    EXPECT_EQ(r.recovery.replayed_records, 0u) << protocol_name(p);
    EXPECT_EQ(r.recovery.catchup_installs, 0u) << protocol_name(p);
    EXPECT_EQ(r.recovery_downtime_ns, 0) << protocol_name(p);
    // The protocols did persist along the way.
    EXPECT_GT(r.recovery.persisted_records, 0u) << protocol_name(p);
    for (std::size_t i = 1; i < r.replica_store_fingerprints.size(); ++i) {
      EXPECT_EQ(r.replica_store_fingerprints[i], r.replica_store_fingerprints[0])
          << protocol_name(p);
    }
  }
}

// The RunReport surfaces the recovery accounting as a stable JSON block.
TEST(RecoveryControl, RunReportCarriesRecoveryBlock) {
  Scenario s = amnesia_scenario(33);
  s.measure = seconds(2);
  s.cooldown = seconds(3);
  s.faults = amnesia_schedule(s);
  const RunResult r = run_multipaxos(s);
  const RunReport report = make_report(Protocol::kMultiPaxos, s, r);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"recovery\":{\"restarts\":"), std::string::npos);
  EXPECT_NE(json.find("\"replayed_records\":"), std::string::npos);
  EXPECT_NE(json.find("\"downtime_ns\":"), std::string::npos);
  EXPECT_EQ(report.recovery.restarts, r.recovery.restarts);
}

// ---------------------------------------------------------------------------
// Negative test: weakened durability loses an acknowledged commit, and the
// lost-commit checker catches it.
//
// The scripted schedule (constant-latency four_dc topology, OWDs in ms:
// client D->leader A 30, A->B 10, A->C 20):
//   t=0      client submits X        (arrives at the leader at t=30)
//   t=45ms   partition A->B and A->C (the Accepts, sent at t=30, already
//            arrived at B; B's ack reaches A at t=50)
//   t=50ms   leader commits X on {A, B}, answers the client (t=80) — but
//            its Commit broadcasts die in the partition, so the followers
//            only ever saw X as accepted, never committed
//   t=100ms  leader crashes
//   t=150ms  partitions heal
//   t=200ms  leader recovers; the restart hook wipes it, replay + catch-up
//            run against B and C (which know no commits)
//   t=300ms  client submits Y
// With the leader's durable log weakened, replay restores nothing: the
// leader reuses index 0 for Y, the followers overwrite their accepted X,
// and X — whose commit the client observed at t=80 — is gone from every
// store. With intact durability, replay restores X's commit record, Y goes
// to index 1, and nothing is lost.
// ---------------------------------------------------------------------------

struct ScriptResult {
  std::vector<sm::Command> acknowledged;           // commit observed by the client
  std::vector<std::unordered_map<std::string, std::string>> stores;
  std::vector<RequestId> lost;                     // checker output
  std::uint64_t client_committed = 0;
};

ScriptResult run_weakened_leader_script(bool weaken) {
  sim::Simulator simulator;
  net::Network network(simulator, test::four_dc(), /*seed=*/1);
  recovery::DurableStore durable;  // zero sync latency: exact timings
  const std::vector<NodeId> rids = test::replica_ids(3);

  std::vector<std::unique_ptr<paxos::Replica>> replicas;
  for (std::size_t i = 0; i < 3; ++i) {
    auto r = std::make_unique<paxos::Replica>(rids[i], i, network, rids, rids[0]);
    r->attach();
    r->enable_durability(durable);
    replicas.push_back(std::move(r));
  }
  if (weaken) durable.weaken(rids[0]);
  network.set_restart_hook([&replicas](NodeId node) {
    for (auto& r : replicas) {
      if (r->id() == node) r->restart();
    }
  });

  paxos::Client client(NodeId{1000}, 3, network, rids[0]);
  client.attach();
  std::unordered_map<std::uint64_t, sm::Command> submitted;  // seq -> command
  ScriptResult out;
  client.set_commit_hook([&](const RequestId& id, TimePoint, TimePoint) {
    out.acknowledged.push_back(submitted.at(id.seq));
  });

  const TimePoint t0 = TimePoint::epoch();
  const sm::Command x = test::make_command(client.id(), 0, "x", "vx");
  const sm::Command y = test::make_command(client.id(), 1, "y", "vy");
  submitted[0] = x;
  submitted[1] = y;
  simulator.schedule_at(t0, [&] { client.submit(x); });
  simulator.schedule_at(t0 + milliseconds(45), [&] {
    network.fault().partition(0, 1);
    network.fault().partition(0, 2);
  });
  simulator.schedule_at(t0 + milliseconds(100),
                        [&] { network.fault().crash(rids[0]); });
  simulator.schedule_at(t0 + milliseconds(150), [&] {
    network.fault().heal(0, 1);
    network.fault().heal(0, 2);
  });
  simulator.schedule_at(t0 + milliseconds(200),
                        [&] { network.fault().recover(rids[0]); });
  simulator.schedule_at(t0 + milliseconds(300), [&] { client.submit(y); });
  simulator.run_until(t0 + seconds(1));

  std::vector<const sm::KvStore*> stores;
  for (const auto& r : replicas) {
    stores.push_back(&r->store());
    out.stores.push_back(r->store().items());
  }
  out.lost = test::lost_commits(out.acknowledged, stores);
  out.client_committed = client.committed_count();
  return out;
}

TEST(WeakenedDurability, CheckerCatchesLostAcknowledgedCommit) {
  const ScriptResult r = run_weakened_leader_script(/*weaken=*/true);
  // The client really observed both commits...
  ASSERT_EQ(r.client_committed, 2u);
  ASSERT_EQ(r.acknowledged.size(), 2u);
  // ...yet X vanished from every replica: the weakened leader forgot it
  // across the amnesiac restart and recycled its log index. The checker
  // must flag exactly that command.
  ASSERT_EQ(r.lost.size(), 1u);
  EXPECT_EQ(r.lost[0].seq, 0u);
  for (const auto& items : r.stores) {
    EXPECT_EQ(items.find("x"), items.end());
  }
}

TEST(WeakenedDurability, IntactDurabilitySurvivesSameSchedule) {
  const ScriptResult r = run_weakened_leader_script(/*weaken=*/false);
  ASSERT_EQ(r.client_committed, 2u);
  // Replay restored X's commit record: no acknowledged commit was lost.
  EXPECT_TRUE(r.lost.empty());
  // The recovered leader re-executed X from its durable image.
  EXPECT_NE(r.stores[0].find("x"), r.stores[0].end());
  EXPECT_NE(r.stores[0].find("y"), r.stores[0].end());
}

// The --recovery gate smoke-feeds this Chrome-trace export to
// scripts/trace_summary.py, which renders the per-node recovery intervals.
TEST(RecoveryControl, WritesChromeTraceSampleForTooling) {
  Scenario s = amnesia_scenario(35);
  s.measure = seconds(2);
  s.cooldown = seconds(3);
  s.faults = amnesia_schedule(s);
  const RunResult r = run_multipaxos(s);
  const RunReport report = make_report(Protocol::kMultiPaxos, s, r);
  const std::string json = report.chrome_trace();
  // Every replica bounced once, so the export carries the crash/recover
  // instants and one rejoin slice per node.
  EXPECT_NE(json.find("\"name\":\"node_crash\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"node_recover\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"recovery\""), std::string::npos);
  std::ofstream out("recovery_trace_sample.json", std::ios::binary);
  ASSERT_TRUE(out.good());
  out << json;
  out.close();
}

}  // namespace
}  // namespace domino::harness
