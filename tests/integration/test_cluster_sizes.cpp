// Cluster-size sweep: the protocols must stay correct and exhibit the
// right quorum geometry at n = 3, 5 and 7 replicas (f = 1, 2, 3).
#include <gtest/gtest.h>

#include "harness/geometry.h"
#include "measure/estimator.h"
#include "harness/runner.h"
#include "measure/quorum.h"

namespace domino::harness {
namespace {

struct SizeCase {
  Protocol protocol;
  std::size_t replicas;
};

class ClusterSizeSweep : public ::testing::TestWithParam<SizeCase> {};

Scenario scenario_for(std::size_t n) {
  Scenario s;
  s.topology = net::Topology::north_america();
  // First n datacenters host replicas; clients in three fixed sites.
  for (std::size_t i = 0; i < n; ++i) s.replica_dcs.push_back(i);
  s.client_dcs = {6, 7, 8};  // IL, QC, TRT
  s.rps = 50;
  s.warmup = seconds(1);
  s.measure = seconds(4);
  s.cooldown = seconds(3);
  s.seed = 77 + n;
  return s;
}

TEST_P(ClusterSizeSweep, AllCommitAndConverge) {
  const SizeCase c = GetParam();
  const RunResult r = run_protocol(c.protocol, scenario_for(c.replicas));
  EXPECT_EQ(r.committed, r.commit_ms.count());
  EXPECT_NEAR(static_cast<double>(r.committed), 600.0, 90.0);  // 3 x 50 x 4s
  EXPECT_GT(r.commit_ms.percentile(50), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ClusterSizeSweep,
    ::testing::Values(SizeCase{Protocol::kDomino, 3}, SizeCase{Protocol::kDomino, 5},
                      SizeCase{Protocol::kDomino, 7}, SizeCase{Protocol::kMencius, 5},
                      SizeCase{Protocol::kMencius, 7}, SizeCase{Protocol::kEPaxos, 5},
                      SizeCase{Protocol::kMultiPaxos, 7},
                      SizeCase{Protocol::kFastPaxos, 5}),
    [](const ::testing::TestParamInfo<SizeCase>& info) {
      std::string name = protocol_name(info.param.protocol);
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name + "_n" + std::to_string(info.param.replicas);
    });

TEST(ClusterSizeGeometry, SupermajorityNeverCheaperThanMajority) {
  // On any placement, the supermajority order statistic (Fast Paxos' wait)
  // is at least the majority order statistic (a leader's replication wait)
  // — the structural reason leader-based protocols can win (Section 4).
  const auto topo = net::Topology::north_america();
  for (std::size_t n : {3u, 5u, 7u, 9u}) {
    std::vector<std::size_t> placement;
    for (std::size_t i = 0; i < n; ++i) placement.push_back(i);
    for (std::size_t client = 0; client < topo.size(); ++client) {
      std::vector<Duration> rtts;
      for (std::size_t dc : placement) rtts.push_back(topo.rtt(client, dc));
      const Duration super = measure::kth_smallest(rtts, measure::supermajority(n));
      const Duration major = measure::kth_smallest(rtts, measure::majority(n));
      EXPECT_GE(super, major) << "n=" << n << " client=" << client;
      EXPECT_EQ(fast_paxos_latency(topo, placement, client), super);
    }
  }
}

TEST(ClusterSizeGeometry, DominoFiveReplicaFastPathWorks) {
  // End-to-end: with 5 replicas the fast path needs only 4 of 5 — a single
  // slow replica no longer blocks it.
  Scenario s = scenario_for(5);
  s.domino_mode = core::ClientConfig::Mode::kDfpOnly;
  s.additional_delay = milliseconds(2);
  const RunResult r = run_domino(s);
  EXPECT_GT(r.fast_path, r.committed * 8 / 10);
}

}  // namespace
}  // namespace domino::harness
