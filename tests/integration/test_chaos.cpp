// Seeded chaos sweep: every protocol runs under a randomized-but-seeded
// fault schedule (a mid-run replica crash, a client<->replica partition, a
// link degradation epoch, and a route change — every crash recovers and
// every partition heals) with per-request client timeouts enabled, and the
// suite asserts:
//   1. liveness — every submitted request eventually commits (retries and
//      protocol failover absorb the faults; nothing is abandoned),
//   2. consistency — a majority of replicas converge to identical stores
//      (a replica that was down may lag; the live majority must agree),
//   3. determinism — running the same (protocol, chaos seed) twice gives
//      byte-identical fault/drop behaviour (equal injector digests) and
//      identical end-to-end results.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.h"
#include "harness/runner.h"

namespace domino::harness {
namespace {

Scenario chaos_scenario(std::uint64_t seed) {
  Scenario s;
  s.topology = net::Topology::north_america();
  s.replica_dcs = {s.topology.index_of("WA"), s.topology.index_of("VA"),
                   s.topology.index_of("QC")};
  s.client_dcs = {s.topology.index_of("IA"), s.topology.index_of("TX")};
  s.rps = 30;
  s.warmup = seconds(1);
  s.measure = seconds(3);
  // Generous drain window: the last request is submitted at the end of the
  // measurement window and may still ride out a fault plus several retries.
  s.cooldown = seconds(4);
  s.seed = seed;
  s.workload.num_keys = 40;
  s.workload.zipf_alpha = 0.75;
  s.client_request_timeout = milliseconds(300);
  s.client_max_retries = 8;
  return s;
}

/// Generate a fault schedule from a seed. All faults fall inside the
/// measurement window and always heal, so a run that retries long enough
/// must commit everything.
net::FaultSchedule make_chaos_schedule(const Scenario& s, std::uint64_t chaos_seed) {
  Rng rng(chaos_seed ^ 0xC4A05ull);
  net::FaultSchedule f;
  const TimePoint w0 = TimePoint::epoch() + s.warmup;
  auto at_ms = [&](double lo, double hi) {
    return w0 + milliseconds(static_cast<std::int64_t>(rng.uniform(lo, hi)));
  };
  auto dur_ms = [&](double lo, double hi) {
    return milliseconds(static_cast<std::int64_t>(rng.uniform(lo, hi)));
  };

  // Crash one non-coordinator replica mid-run; it always comes back.
  // (Replica 0 is the fixed Multi-Paxos leader / Fast Paxos and DFP
  // coordinator — none of which elect a successor — so chaos crashes spare
  // it and dedicated tests cover coordinator failure per protocol.)
  const std::size_t victim =
      1 + static_cast<std::size_t>(rng.next_u64() % (s.replica_dcs.size() - 1));
  f.crash_for(at_ms(300, 1200), NodeId{static_cast<std::uint32_t>(victim)},
              dur_ms(200, 500));

  // One bidirectional partition between a client DC and a replica DC.
  const std::size_t cdc = s.client_dcs[rng.next_u64() % s.client_dcs.size()];
  const std::size_t rdc = s.replica_dcs[rng.next_u64() % s.replica_dcs.size()];
  if (cdc != rdc) f.partition_both_for(at_ms(1600, 2200), cdc, rdc, dur_ms(200, 400));

  // A degradation epoch on a replica-to-replica link.
  f.degrade(at_ms(500, 2000), dur_ms(300, 800), s.replica_dcs[0], s.replica_dcs[1],
            /*multiplier=*/rng.uniform(1.5, 3.0), /*extra_spike_prob=*/0.2,
            /*spike_mean=*/milliseconds(5));

  // A permanent route change on one replica link: +50-100% base delay.
  const Duration old_base = s.topology.owd(s.replica_dcs[1], s.replica_dcs[2]);
  f.route_change(at_ms(800, 2500), s.replica_dcs[1], s.replica_dcs[2],
                 Duration{static_cast<std::int64_t>(
                     static_cast<double>(old_base.nanos()) * rng.uniform(1.5, 2.0))});
  return f;
}

/// The fingerprint shared by the largest group of replicas, plus its count.
std::pair<std::uint64_t, std::size_t> majority_fingerprint(
    const std::vector<std::uint64_t>& fps) {
  std::map<std::uint64_t, std::size_t> votes;
  for (std::uint64_t fp : fps) ++votes[fp];
  std::pair<std::uint64_t, std::size_t> best{0, 0};
  for (const auto& [fp, n] : votes) {
    if (n > best.second) best = {fp, n};
  }
  return best;
}

struct ChaosCase {
  Protocol protocol;
  std::uint64_t seed;
};

class ChaosSweep : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(ChaosSweep, LivenessConsistencyAndDeterminismUnderFaults) {
  const ChaosCase c = GetParam();
  Scenario s = chaos_scenario(c.seed);
  s.faults = make_chaos_schedule(s, c.seed);
  ASSERT_FALSE(s.faults.empty());

  const RunResult a = run_protocol(c.protocol, s);
  const RunResult b = run_protocol(c.protocol, s);

  // -- Liveness: all faults healed and retries were generous, so every
  // submitted request commits; nothing is abandoned or left hanging.
  EXPECT_GT(a.committed, 0u);
  EXPECT_EQ(a.client_abandoned, 0u);
  EXPECT_EQ(a.client_inflight_end, 0u);
  EXPECT_EQ(a.submitted,
            a.client_committed + a.client_abandoned + a.client_inflight_end);
  // The schedule actually bit: packets were lost to the crash/partition.
  EXPECT_GT(a.packets_dropped, 0u);
  EXPECT_GT(a.fault_transitions, 0u);

  // -- Consistency: the live majority of replicas agree on the full store.
  ASSERT_EQ(a.replica_store_fingerprints.size(), s.replica_dcs.size());
  const auto [fp, agree] = majority_fingerprint(a.replica_store_fingerprints);
  EXPECT_GE(agree, s.replica_dcs.size() / 2 + 1)
      << "replica stores diverged beyond the crashed minority";

  // -- Determinism: same seed + schedule => byte-identical fault/drop
  // behaviour and identical end-to-end results.
  EXPECT_EQ(a.fault_digest, b.fault_digest);
  EXPECT_EQ(a.packets_dropped, b.packets_dropped);
  EXPECT_EQ(a.drops_crashed_source, b.drops_crashed_source);
  EXPECT_EQ(a.drops_crashed_dest, b.drops_crashed_dest);
  EXPECT_EQ(a.drops_partition, b.drops_partition);
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.client_committed, b.client_committed);
  EXPECT_EQ(a.client_retries, b.client_retries);
  EXPECT_EQ(a.replica_store_fingerprints, b.replica_store_fingerprints);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ChaosSweep,
    ::testing::Values(
        ChaosCase{Protocol::kMultiPaxos, 11}, ChaosCase{Protocol::kMultiPaxos, 12},
        ChaosCase{Protocol::kMultiPaxos, 13}, ChaosCase{Protocol::kMencius, 11},
        ChaosCase{Protocol::kMencius, 12}, ChaosCase{Protocol::kMencius, 13},
        ChaosCase{Protocol::kEPaxos, 11}, ChaosCase{Protocol::kEPaxos, 12},
        ChaosCase{Protocol::kEPaxos, 13}, ChaosCase{Protocol::kFastPaxos, 11},
        ChaosCase{Protocol::kFastPaxos, 12}, ChaosCase{Protocol::kFastPaxos, 13},
        ChaosCase{Protocol::kDomino, 11}, ChaosCase{Protocol::kDomino, 12},
        ChaosCase{Protocol::kDomino, 13}),
    [](const ::testing::TestParamInfo<ChaosCase>& info) {
      std::string name = protocol_name(info.param.protocol);
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name + "_chaos" + std::to_string(info.param.seed);
    });

// Acceptance scenario: a Domino deployment whose clients lean on DM loses
// the DM leader mid-run; the probe feed goes stale, timed-out requests fail
// over to a live leader, and every request still commits.
TEST(ChaosDomino, DmLeaderCrashMidRunCompletesAllRequests) {
  Scenario s = chaos_scenario(77);
  s.domino_mode = core::ClientConfig::Mode::kDmOnly;
  // Crash the closest replica to the first client DC — the minimum-latency
  // DM leader its estimator will have picked — for 800 ms mid-window.
  const std::size_t leader =
      closest_replica(s.topology, s.replica_dcs, s.client_dcs[0]);
  net::FaultSchedule f;
  f.crash_for(TimePoint::epoch() + s.warmup + milliseconds(800),
              NodeId{static_cast<std::uint32_t>(leader)}, milliseconds(800));
  s.faults = f;

  const RunResult r = run_domino(s);
  EXPECT_GT(r.committed, 0u);
  EXPECT_EQ(r.client_abandoned, 0u);
  EXPECT_EQ(r.client_inflight_end, 0u);
  EXPECT_EQ(r.submitted, r.client_committed);
  // The crash was felt (requests to the dead leader were dropped and
  // retried elsewhere).
  EXPECT_GT(r.drops_crashed_dest, 0u);
  EXPECT_GT(r.client_retries, 0u);
}

// Fault-free control: enabling timeouts must not change a healthy run.
TEST(ChaosControl, NoFaultsMeansNoDropsNoRetries) {
  Scenario s = chaos_scenario(5);
  const RunResult r = run_domino(s);
  EXPECT_EQ(r.packets_dropped, 0u);
  EXPECT_EQ(r.client_retries, 0u);
  EXPECT_EQ(r.client_abandoned, 0u);
  EXPECT_EQ(r.fault_transitions, 0u);
  EXPECT_EQ(r.submitted, r.client_committed);
  const auto [fp, agree] = majority_fingerprint(r.replica_store_fingerprints);
  EXPECT_EQ(agree, r.replica_store_fingerprints.size());  // all converge
}

}  // namespace
}  // namespace domino::harness
