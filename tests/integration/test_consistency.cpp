// Cross-protocol consistency sweep: for every protocol and a range of
// seeds/contention levels, run a multi-client deployment on a jittery WAN
// and assert the replicated-state-machine invariants:
//   1. every submitted request commits exactly once at its client,
//   2. all replicas converge to identical stores,
//   3. all replicas apply the same number of commands.
#include <gtest/gtest.h>

#include "harness/runner.h"

namespace domino::harness {
namespace {

struct Sweep {
  Protocol protocol;
  std::uint64_t seed;
  double zipf;
};

class ConsistencySweep : public ::testing::TestWithParam<Sweep> {};

// The runner's protocol deployments already assert internal invariants via
// exceptions (e.g. conflicting log entries throw); this test drives them
// under jitter and checks the end-to-end counts.
TEST_P(ConsistencySweep, AllSubmittedRequestsCommitUnderJitter) {
  const Sweep sweep = GetParam();
  Scenario s;
  s.topology = net::Topology::north_america();
  s.replica_dcs = {s.topology.index_of("WA"), s.topology.index_of("VA"),
                   s.topology.index_of("QC")};
  s.client_dcs = {s.topology.index_of("IA"), s.topology.index_of("TX"),
                  s.topology.index_of("CA")};
  s.rps = 100;
  s.warmup = seconds(1);
  s.measure = seconds(4);
  s.cooldown = seconds(3);
  s.seed = sweep.seed;
  s.workload.num_keys = 50;  // heavy contention stresses ordering
  s.workload.zipf_alpha = sweep.zipf;

  const RunResult r = run_protocol(sweep.protocol, s);
  EXPECT_GT(r.committed, 0u);
  // Every tracked (measurement-window) request committed.
  EXPECT_EQ(r.committed, r.commit_ms.count());
  // ~100 rps x 4 s x 3 clients tracked requests, all committed.
  EXPECT_NEAR(static_cast<double>(r.committed), 1200.0, 150.0);
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, ConsistencySweep,
    ::testing::Values(Sweep{Protocol::kMultiPaxos, 1, 0.75},
                      Sweep{Protocol::kMultiPaxos, 2, 0.95},
                      Sweep{Protocol::kMencius, 1, 0.75},
                      Sweep{Protocol::kMencius, 2, 0.95},
                      Sweep{Protocol::kEPaxos, 1, 0.75},
                      Sweep{Protocol::kEPaxos, 2, 0.95},
                      Sweep{Protocol::kFastPaxos, 1, 0.75},
                      Sweep{Protocol::kDomino, 1, 0.75},
                      Sweep{Protocol::kDomino, 2, 0.95},
                      Sweep{Protocol::kDomino, 3, 0.75}),
    [](const ::testing::TestParamInfo<Sweep>& info) {
      std::string name = protocol_name(info.param.protocol);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name + "_seed" + std::to_string(info.param.seed) + "_z" +
             std::to_string(static_cast<int>(info.param.zipf * 100));
    });

TEST(RunnerDeterminism, SameSeedSameResult) {
  Scenario s;
  s.topology = net::Topology::globe();
  s.replica_dcs = {1, 2, 3};
  s.client_dcs = {0, 4};
  s.rps = 50;
  s.warmup = seconds(1);
  s.measure = seconds(3);
  s.seed = 99;
  const RunResult a = run_domino(s);
  const RunResult b = run_domino(s);
  ASSERT_EQ(a.commit_ms.count(), b.commit_ms.count());
  EXPECT_DOUBLE_EQ(a.commit_ms.percentile(50), b.commit_ms.percentile(50));
  EXPECT_DOUBLE_EQ(a.commit_ms.percentile(99), b.commit_ms.percentile(99));
  EXPECT_EQ(a.packets_sent, b.packets_sent);
}

TEST(RunnerDeterminism, DifferentSeedsDiffer) {
  Scenario s;
  s.topology = net::Topology::globe();
  s.replica_dcs = {1, 2, 3};
  s.client_dcs = {0};
  s.rps = 50;
  s.warmup = seconds(1);
  s.measure = seconds(3);
  s.seed = 1;
  const RunResult a = run_domino(s);
  s.seed = 2;
  const RunResult b = run_domino(s);
  EXPECT_NE(a.packets_sent, b.packets_sent);
}

}  // namespace
}  // namespace domino::harness
