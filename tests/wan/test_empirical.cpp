#include "wan/empirical.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/stats.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "wan/generator.h"

namespace domino::wan {
namespace {

std::shared_ptr<const std::vector<TraceSample>> make_samples(
    std::vector<TraceSample> v) {
  return std::make_shared<const std::vector<TraceSample>>(std::move(v));
}

// 0 ms: 10, 1 s: 20, 2 s: 30, 3 s: 40 (ms OWD, one sample per second).
std::shared_ptr<const std::vector<TraceSample>> ramp() {
  return make_samples({{TimePoint::epoch(), milliseconds(10)},
                       {TimePoint::epoch() + seconds(1), milliseconds(20)},
                       {TimePoint::epoch() + seconds(2), milliseconds(30)},
                       {TimePoint::epoch() + seconds(3), milliseconds(40)}});
}

TEST(EmpiricalLatency, SamplesStayInsideWindowBounds) {
  EmpiricalConfig cfg;
  cfg.window = seconds(1);
  EmpiricalLatency m(ramp(), cfg);
  Rng rng(1);
  // At t=2.5 s the window (1.5, 2.5] holds exactly the 30 ms sample.
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(m.sample(TimePoint::epoch() + milliseconds(2500), rng), milliseconds(30));
  }
  // The window is half-open (t - window, t]: at t=3 s a 1 s window holds
  // only the 40 ms sample (the 2 s sample sits exactly on the excluded
  // boundary).
  EXPECT_EQ(m.base(TimePoint::epoch() + seconds(3)), milliseconds(40));
  // A 2 s window at t=3 s covers (1, 3] = {30, 40}: every draw
  // interpolates between them, and base() is the windowed minimum.
  EmpiricalConfig wide;
  wide.window = seconds(2);
  EmpiricalLatency w(ramp(), wide);
  for (int i = 0; i < 200; ++i) {
    const Duration d = w.sample(TimePoint::epoch() + seconds(3), rng);
    EXPECT_GE(d, milliseconds(30));
    EXPECT_LE(d, milliseconds(40));
  }
  EXPECT_EQ(w.base(TimePoint::epoch() + seconds(3)), milliseconds(30));
}

TEST(EmpiricalLatency, BeforeFirstSampleUsesFirstSample) {
  EmpiricalConfig cfg;
  EmpiricalLatency m(make_samples({{TimePoint::epoch() + seconds(5), milliseconds(25)},
                                   {TimePoint::epoch() + seconds(6), milliseconds(35)}}),
                     cfg);
  Rng rng(2);
  EXPECT_EQ(m.sample(TimePoint::epoch(), rng), milliseconds(25));
  EXPECT_EQ(m.base(TimePoint::epoch()), milliseconds(25));
}

TEST(EmpiricalLatency, WrapLoopsTraceTime) {
  EmpiricalConfig cfg;
  cfg.window = seconds(1);
  cfg.end_policy = TraceEndPolicy::kWrap;
  EmpiricalLatency m(ramp(), cfg);
  // Trace span is 3 s: t = 3.5 s wraps to trace time 0.5 s.
  EXPECT_EQ(m.trace_time(TimePoint::epoch() + milliseconds(3500)),
            TimePoint::epoch() + milliseconds(500));
  EXPECT_EQ(m.trace_time(TimePoint::epoch() + milliseconds(6500)),
            TimePoint::epoch() + milliseconds(500));
  Rng rng(3);
  // Window (−0.5, 0.5] (clamped) holds only the 10 ms sample.
  EXPECT_EQ(m.sample(TimePoint::epoch() + milliseconds(3500), rng), milliseconds(10));
  EXPECT_EQ(m.base(TimePoint::epoch() + milliseconds(3500)), milliseconds(10));
}

TEST(EmpiricalLatency, ClampFreezesFinalWindow) {
  EmpiricalConfig cfg;
  cfg.window = seconds(2);  // final window (1, 3] = {30, 40}
  cfg.end_policy = TraceEndPolicy::kClamp;
  EmpiricalLatency m(ramp(), cfg);
  EXPECT_EQ(m.trace_time(TimePoint::epoch() + seconds(100)),
            TimePoint::epoch() + seconds(3));
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const Duration d = m.sample(TimePoint::epoch() + seconds(100), rng);
    EXPECT_GE(d, milliseconds(30));
    EXPECT_LE(d, milliseconds(40));
  }
  EXPECT_EQ(m.base(TimePoint::epoch() + seconds(100)), milliseconds(30));
}

TEST(EmpiricalLatency, SameSeedReplayIsByteIdentical) {
  const GeneratorConfig gc = drifting_config(milliseconds(30), 42);
  const auto samples = make_samples(TraceGenerator(gc).generate());
  EmpiricalConfig cfg;
  EmpiricalLatency a(samples, cfg);
  EmpiricalLatency b(samples, cfg);
  Rng ra(9);
  Rng rb(9);
  // Identical query sequence, identical seeds -> identical draws, even when
  // the queries jump backward in time (cache rebuilds must be functional).
  std::vector<TimePoint> at;
  Rng jump(5);
  for (int i = 0; i < 2'000; ++i) {
    at.push_back(TimePoint::epoch() +
                 nanoseconds(static_cast<std::int64_t>(jump.next_double() * 6e10)));
  }
  for (const TimePoint t : at) {
    EXPECT_EQ(a.sample(t, ra), b.sample(t, rb));
  }
}

TEST(EmpiricalLatency, TracksDistributionShift) {
  // First second around 10 ms, second second around 50 ms: sampling must
  // follow the regime the window covers.
  std::vector<TraceSample> v;
  for (int i = 0; i < 100; ++i) {
    v.push_back({TimePoint::epoch() + milliseconds(10) * i, milliseconds(10)});
  }
  for (int i = 0; i < 100; ++i) {
    v.push_back({TimePoint::epoch() + seconds(1) + milliseconds(10) * i, milliseconds(50)});
  }
  EmpiricalConfig cfg;
  cfg.window = milliseconds(500);
  EmpiricalLatency m(make_samples(std::move(v)), cfg);
  Rng rng(6);
  EXPECT_EQ(m.sample(TimePoint::epoch() + milliseconds(900), rng), milliseconds(10));
  EXPECT_EQ(m.sample(TimePoint::epoch() + milliseconds(1900), rng), milliseconds(50));
  EXPECT_EQ(m.base(TimePoint::epoch() + milliseconds(900)), milliseconds(10));
  EXPECT_EQ(m.base(TimePoint::epoch() + milliseconds(1900)), milliseconds(50));
}

TEST(ApplyTrace, ReplacesNamedLinksOnly) {
  sim::Simulator simulator;
  net::Network network(simulator, net::Topology::globe(), 1);
  DelayTrace trace;
  trace.add("VA", "WA", TimePoint::epoch(), milliseconds(99));
  trace.add("WA", "VA", TimePoint::epoch(), milliseconds(101));
  const std::size_t replaced = wan::apply_trace(trace, network, {});
  EXPECT_EQ(replaced, 2u);
  const net::Topology topo = net::Topology::globe();
  const std::size_t va = topo.index_of("VA");
  const std::size_t wa = topo.index_of("WA");
  const std::size_t pr = topo.index_of("PR");
  EXPECT_EQ(network.link_model(va, wa).base(TimePoint::epoch()), milliseconds(99));
  EXPECT_EQ(network.link_model(wa, va).base(TimePoint::epoch()), milliseconds(101));
  // Untraced links keep their existing (constant) model.
  EXPECT_EQ(network.link_model(va, pr).base(TimePoint::epoch()),
            topo.owd(va, pr));
}

TEST(ApplyTrace, UnknownEndpointThrows) {
  sim::Simulator simulator;
  net::Network network(simulator, net::Topology::globe(), 1);
  DelayTrace trace;
  trace.add("VA", "NOWHERE", TimePoint::epoch(), milliseconds(10));
  EXPECT_THROW((void)wan::apply_trace(trace, network, {}), std::out_of_range);
}

}  // namespace
}  // namespace domino::wan
