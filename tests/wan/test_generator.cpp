#include "wan/generator.h"

#include <gtest/gtest.h>

#include "common/stats.h"

namespace domino::wan {
namespace {

TEST(WanTraceGenerator, SameSeedIsByteIdentical) {
  const GeneratorConfig cfg = drifting_config(milliseconds(33), 7);
  const auto a = TraceGenerator(cfg).generate();
  const auto b = TraceGenerator(cfg).generate();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a, b);

  GeneratorConfig other = cfg;
  other.seed = 8;
  EXPECT_NE(TraceGenerator(other).generate(), a);
}

TEST(WanTraceGenerator, SampleCadenceAndFloor) {
  GeneratorConfig cfg = stationary_config(milliseconds(40), 1);
  cfg.duration = seconds(2);
  cfg.sample_interval = milliseconds(10);
  cfg.diurnal_amplitude = Duration::zero();  // keep the floor exact
  const auto samples = TraceGenerator(cfg).generate();
  ASSERT_EQ(samples.size(), 200u);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].at, TimePoint::epoch() + milliseconds(10) * static_cast<int>(i));
    // Delays never dip below the propagation floor (jitter is additive).
    EXPECT_GE(samples[i].owd, milliseconds(40));
  }
}

TEST(WanTraceGenerator, StationaryRegimeIsStable) {
  GeneratorConfig cfg = stationary_config(milliseconds(33), 3);
  cfg.duration = seconds(30);
  const auto samples = TraceGenerator(cfg).generate();
  StatAccumulator s;
  for (const TraceSample& x : samples) s.add(x.owd.millis());
  // The Section 3 observation: p5-p95 spread is small vs the floor.
  EXPECT_LT(s.percentile(95) - s.percentile(5), 2.0);
  EXPECT_GE(s.min(), 32.5);  // floor minus the 0.3 ms preset wander
}

TEST(WanTraceGenerator, RouteStepsShiftTheFloor) {
  GeneratorConfig cfg = stationary_config(milliseconds(30), 4);
  cfg.duration = seconds(10);
  cfg.diurnal_amplitude = Duration::zero();  // isolate the steps
  cfg.spike_prob = 0.0;
  cfg.route_steps = {{seconds(5), milliseconds(45)}};
  const auto samples = TraceGenerator(cfg).generate();
  for (const TraceSample& x : samples) {
    if (x.at < TimePoint::epoch() + seconds(5)) {
      EXPECT_GE(x.owd, milliseconds(30));
      EXPECT_LT(x.owd, milliseconds(40));
    } else {
      EXPECT_GE(x.owd, milliseconds(45));
    }
  }
}

TEST(WanTraceGenerator, DiurnalDriftMovesTheMedian) {
  GeneratorConfig cfg = stationary_config(milliseconds(50), 5);
  cfg.duration = seconds(40);
  cfg.diurnal_amplitude = milliseconds(10);
  cfg.diurnal_period = seconds(40);
  const auto samples = TraceGenerator(cfg).generate();
  // Quarter period (t=10 s) sits at +amplitude, three quarters at
  // -amplitude: compare windows around each.
  StatAccumulator up, down;
  for (const TraceSample& x : samples) {
    const double t = (x.at - TimePoint::epoch()).seconds();
    if (t >= 8 && t < 12) up.add(x.owd.millis());
    if (t >= 28 && t < 32) down.add(x.owd.millis());
  }
  EXPECT_GT(up.percentile(50), down.percentile(50) + 15.0);
}

TEST(WanTraceGenerator, CongestionEpochsRaiseDelays) {
  GeneratorConfig base = stationary_config(milliseconds(30), 6);
  base.duration = seconds(30);
  GeneratorConfig congested = base;
  congested.congestion_gap = seconds(3);
  congested.congestion_len = seconds(2);
  congested.congestion_extra = milliseconds(10);
  StatAccumulator quiet_s, cong_s;
  for (const TraceSample& x : TraceGenerator(base).generate()) quiet_s.add(x.owd.millis());
  for (const TraceSample& x : TraceGenerator(congested).generate()) {
    cong_s.add(x.owd.millis());
  }
  // Epochs cover a large fraction of the run, so the upper tail must rise
  // by about the queueing extra.
  EXPECT_GT(cong_s.percentile(90), quiet_s.percentile(90) + 5.0);
}

TEST(WanTraceGenerator, HeavyTailSpikesAppear) {
  GeneratorConfig cfg = stationary_config(milliseconds(20), 8);
  cfg.duration = seconds(60);
  cfg.spike_prob = 0.01;
  cfg.spike_mean = milliseconds(10);
  cfg.heavy_tail_prob = 0.5;
  cfg.heavy_tail_factor = 20.0;
  int big = 0;
  for (const TraceSample& x : TraceGenerator(cfg).generate()) {
    if (x.owd > milliseconds(80)) ++big;
  }
  // ~0.5% of 6000 samples get a 20x spike; a handful must clear 80 ms.
  EXPECT_GT(big, 3);
}

TEST(WanTraceGenerator, GenerateIntoRespectsTraceLimits) {
  GeneratorConfig cfg = stationary_config(milliseconds(10), 9);
  cfg.duration = seconds(1);
  cfg.sample_interval = milliseconds(10);
  TraceLimits limits;
  limits.max_rows = 50;  // 100 samples incoming
  DelayTrace trace(limits);
  EXPECT_THROW(TraceGenerator(cfg).generate_into(trace, "VA", "WA"), TraceError);
}

TEST(WanTraceGenerator, PresetsRoundTripThroughCsv) {
  GeneratorConfig cfg = drifting_config(milliseconds(33), 10);
  cfg.duration = seconds(5);
  DelayTrace trace;
  TraceGenerator(cfg).generate_into(trace, "VA", "WA");
  const DelayTrace back = DelayTrace::parse_csv(trace.to_csv());
  EXPECT_EQ(*back.samples("VA", "WA"), *trace.samples("VA", "WA"));
}

}  // namespace
}  // namespace domino::wan
