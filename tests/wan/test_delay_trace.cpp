#include "wan/delay_trace.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

namespace domino::wan {
namespace {

constexpr const char* kGood =
    "# comment line\n"
    "time_ms,from,to,owd_ms\n"
    "0.000000,VA,WA,33.512000\n"
    "10.000000,VA,WA,33.498000\n"
    "0.000000,WA,VA,34.100000\n"
    "20.500000,VA,WA,33.700125\n";

TEST(DelayTrace, ParsesSimpleCsv) {
  const DelayTrace t = DelayTrace::parse_csv(kGood);
  EXPECT_EQ(t.link_count(), 2u);
  EXPECT_EQ(t.total_samples(), 4u);
  const auto va_wa = t.samples("VA", "WA");
  ASSERT_NE(va_wa, nullptr);
  ASSERT_EQ(va_wa->size(), 3u);
  EXPECT_EQ((*va_wa)[0].at, TimePoint::epoch());
  EXPECT_EQ((*va_wa)[0].owd, microseconds(33'512));
  EXPECT_EQ((*va_wa)[2].at, TimePoint::epoch() + microseconds(20'500));
  EXPECT_EQ(t.end_time(), TimePoint::epoch() + microseconds(20'500));
  EXPECT_EQ(t.samples("WA", "NSW"), nullptr);
}

TEST(DelayTrace, CsvRoundTripsExactly) {
  const DelayTrace t = DelayTrace::parse_csv(kGood);
  const std::string csv = t.to_csv();
  const DelayTrace back = DelayTrace::parse_csv(csv);
  ASSERT_EQ(back.link_count(), t.link_count());
  for (std::size_t i = 0; i < t.link_count(); ++i) {
    EXPECT_EQ(back.link(i), t.link(i));
    EXPECT_EQ(*back.samples_at(i), *t.samples_at(i));
  }
  // Serialization itself is a fixed point.
  EXPECT_EQ(back.to_csv(), csv);
}

TEST(DelayTrace, NanosecondResolutionSurvivesRoundTrip) {
  DelayTrace t;
  t.add("A", "B", TimePoint::epoch() + nanoseconds(123'456'789),
        nanoseconds(33'000'001));
  const DelayTrace back = DelayTrace::parse_csv(t.to_csv());
  EXPECT_EQ((*back.samples("A", "B"))[0].at,
            TimePoint::epoch() + nanoseconds(123'456'789));
  EXPECT_EQ((*back.samples("A", "B"))[0].owd, nanoseconds(33'000'001));
}

TEST(DelayTrace, RejectsMissingHeader) {
  EXPECT_THROW((void)DelayTrace::parse_csv("0.0,VA,WA,33.5\n"), TraceError);
  EXPECT_THROW((void)DelayTrace::parse_csv(""), TraceError);
  EXPECT_THROW((void)DelayTrace::parse_csv("# only a comment\n"), TraceError);
}

TEST(DelayTrace, RejectsTruncatedAndOverlongRows) {
  EXPECT_THROW(
      (void)DelayTrace::parse_csv("time_ms,from,to,owd_ms\n0.0,VA,WA\n"),
      TraceError);
  EXPECT_THROW(
      (void)DelayTrace::parse_csv("time_ms,from,to,owd_ms\n0.0,VA\n"),
      TraceError);
  EXPECT_THROW(
      (void)DelayTrace::parse_csv("time_ms,from,to,owd_ms\n0.0,VA,WA,33.5,extra\n"),
      TraceError);
  // A row truncated mid-number (e.g. a partial download) must not parse.
  EXPECT_THROW(
      (void)DelayTrace::parse_csv("time_ms,from,to,owd_ms\n0.0,VA,WA,33.5\n10.0,VA,W"),
      TraceError);
}

TEST(DelayTrace, RejectsNonMonotoneTimestamps) {
  EXPECT_THROW((void)DelayTrace::parse_csv("time_ms,from,to,owd_ms\n"
                                           "10.0,VA,WA,33.5\n"
                                           "5.0,VA,WA,33.5\n"),
               TraceError);
  // Monotonicity is per directed link: interleaving other links is fine.
  const DelayTrace ok = DelayTrace::parse_csv("time_ms,from,to,owd_ms\n"
                                              "10.0,VA,WA,33.5\n"
                                              "5.0,WA,VA,33.5\n"
                                              "10.0,VA,WA,33.6\n");
  EXPECT_EQ(ok.total_samples(), 3u);
}

TEST(DelayTrace, RejectsBadDelayValues) {
  const char* bad_rows[] = {
      "0.0,VA,WA,nan\n",     "0.0,VA,WA,inf\n",  "0.0,VA,WA,-1.0\n",
      "0.0,VA,WA,99999999\n",  // over max_owd
      "0.0,VA,WA,abc\n",     "0.0,VA,WA,\n",     "abc,VA,WA,33.5\n",
      "-5.0,VA,WA,33.5\n",     // negative timestamp
      "0.0,,WA,33.5\n",        // empty endpoint
  };
  for (const char* row : bad_rows) {
    const std::string csv = std::string("time_ms,from,to,owd_ms\n") + row;
    EXPECT_THROW((void)DelayTrace::parse_csv(csv), TraceError) << row;
  }
}

TEST(DelayTrace, EnforcesRowLimit) {
  TraceLimits limits;
  limits.max_rows = 3;
  std::string csv = "time_ms,from,to,owd_ms\n";
  for (int i = 0; i < 4; ++i) {
    csv += std::to_string(i * 10) + ".0,VA,WA,33.5\n";
  }
  EXPECT_THROW((void)DelayTrace::parse_csv(csv, limits), TraceError);
  csv = "time_ms,from,to,owd_ms\n0.0,VA,WA,33.5\n";
  EXPECT_EQ(DelayTrace::parse_csv(csv, limits).total_samples(), 1u);
}

TEST(DelayTrace, EnforcesLinkAndNameLimits) {
  TraceLimits limits;
  limits.max_links = 2;
  std::string csv = "time_ms,from,to,owd_ms\n"
                    "0.0,A,B,1.0\n0.0,B,A,1.0\n0.0,A,C,1.0\n";
  EXPECT_THROW((void)DelayTrace::parse_csv(csv, limits), TraceError);

  TraceLimits name_limits;
  name_limits.max_name_length = 4;
  EXPECT_THROW((void)DelayTrace::parse_csv(
                   "time_ms,from,to,owd_ms\n0.0,TOOLONG,WA,1.0\n", name_limits),
               TraceError);
}

TEST(DelayTrace, AddLinkValidatesMovedSamples) {
  DelayTrace t;
  std::vector<TraceSample> good = {{TimePoint::epoch(), milliseconds(10)},
                                   {TimePoint::epoch() + seconds(1), milliseconds(11)}};
  t.add_link("VA", "WA", good);
  EXPECT_EQ(t.total_samples(), 2u);

  std::vector<TraceSample> unsorted = {{TimePoint::epoch() + seconds(1), milliseconds(10)},
                                       {TimePoint::epoch(), milliseconds(11)}};
  EXPECT_THROW(t.add_link("WA", "VA", unsorted), TraceError);
  std::vector<TraceSample> negative = {{TimePoint::epoch(), milliseconds(-1)}};
  EXPECT_THROW(t.add_link("WA", "VA", negative), TraceError);
}

TEST(DelayTrace, LoadsCheckedInFixtures) {
  const DelayTrace globe =
      DelayTrace::load(std::string(DOMINO_TRACE_DIR) + "/globe_va.csv");
  EXPECT_EQ(globe.link_count(), 6u);
  ASSERT_NE(globe.samples("VA", "NSW"), nullptr);
  const DelayTrace drift =
      DelayTrace::load(std::string(DOMINO_TRACE_DIR) + "/va_wa_drift.csv");
  EXPECT_EQ(drift.link_count(), 2u);
  // Loading the fixture directory throws: both files carry VA<->WA samples
  // starting at t=0, and per-link monotonicity holds across files too.
  EXPECT_THROW((void)DelayTrace::load(DOMINO_TRACE_DIR), TraceError);
}

TEST(DelayTrace, LoadsDirectoryInSortedOrder) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(::testing::TempDir()) / "wan_trace_dir";
  fs::create_directories(dir);
  // b.csv continues a.csv's VA->WA series; sorted filename order makes the
  // concatenation monotone. The stray .txt file must be ignored.
  std::ofstream(dir / "a.csv") << "time_ms,from,to,owd_ms\n0.0,VA,WA,33.5\n";
  std::ofstream(dir / "b.csv") << "time_ms,from,to,owd_ms\n10.0,VA,WA,34.5\n";
  std::ofstream(dir / "notes.txt") << "not a trace\n";
  const DelayTrace t = DelayTrace::load(dir.string());
  EXPECT_EQ(t.link_count(), 1u);
  ASSERT_EQ(t.samples("VA", "WA")->size(), 2u);
  EXPECT_EQ((*t.samples("VA", "WA"))[1].owd, microseconds(34'500));
  fs::remove_all(dir);
}

TEST(DelayTrace, LoadRejectsMissingPath) {
  EXPECT_THROW((void)DelayTrace::load("/nonexistent/trace.csv"), TraceError);
}

}  // namespace
}  // namespace domino::wan
