#include <gtest/gtest.h>

#include "epaxos/client.h"
#include "epaxos/replica.h"
#include "support/fixtures.h"

namespace domino::epaxos {
namespace {

using test::four_dc;
using test::make_command;
using test::replica_ids;

TEST(EpaxosQuorums, FastQuorumSizes) {
  EXPECT_EQ(fast_quorum(3), 2u);
  EXPECT_EQ(fast_quorum(5), 3u);
  EXPECT_EQ(fast_quorum(7), 5u);
}

struct EpaxosCluster : ::testing::Test {
  sim::Simulator simulator;
  net::Network network{simulator, four_dc(), 1};
  std::vector<NodeId> rids = replica_ids(3);
  std::vector<std::unique_ptr<Replica>> replicas;

  void SetUp() override {
    for (std::size_t i = 0; i < 3; ++i) {
      replicas.push_back(std::make_unique<Replica>(rids[i], i, network, rids));
      replicas.back()->attach();
    }
  }

  std::unique_ptr<Client> make_client(NodeId id, std::size_t dc, NodeId leader) {
    auto c = std::make_unique<Client>(id, dc, network, leader);
    c->attach();
    return c;
  }
};

TEST_F(EpaxosCluster, NonConflictingUsesFastPath) {
  auto client = make_client(NodeId{1000}, 0, rids[0]);
  client->submit(make_command(client->id(), 0, "a"));
  client->submit(make_command(client->id(), 1, "b"));
  simulator.run();
  EXPECT_EQ(client->committed_count(), 2u);
  EXPECT_EQ(replicas[0]->fast_path_commits(), 2u);
  EXPECT_EQ(replicas[0]->slow_path_commits(), 0u);
}

TEST_F(EpaxosCluster, FastPathLatencyIsOneRoundTrip) {
  auto client = make_client(NodeId{1000}, 0, rids[0]);
  TimePoint committed;
  client->set_commit_hook([&](const RequestId&, TimePoint, TimePoint at) { committed = at; });
  client->submit(make_command(client->id(), 0, "a"));
  simulator.run();
  // Client co-located with leader A (0.5 ms RTT); fast quorum of 2 needs
  // one reply, nearest peer B at 20 ms RTT: total ~20.5 ms.
  EXPECT_NEAR((committed - TimePoint::epoch()).millis(), 20.5, 0.5);
}

TEST_F(EpaxosCluster, SequentialConflictsStillFastWhenDepsAgree) {
  // Same-key commands proposed by the SAME leader agree on deps everywhere,
  // so they stay on the fast path.
  auto client = make_client(NodeId{1000}, 0, rids[0]);
  client->submit(make_command(client->id(), 0, "k"));
  client->submit(make_command(client->id(), 1, "k"));
  simulator.run();
  EXPECT_EQ(client->committed_count(), 2u);
  EXPECT_EQ(replicas[0]->fast_path_commits(), 2u);
}

TEST_F(EpaxosCluster, ConcurrentConflictsTriggerSlowPath) {
  // Two leaders propose conflicting commands simultaneously: their
  // pre-accept attributes diverge at the acceptors, forcing the Accept
  // round for at least one of them.
  auto c0 = make_client(NodeId{1000}, 0, rids[0]);
  auto c2 = make_client(NodeId{1002}, 2, rids[2]);
  c0->submit(make_command(c0->id(), 0, "hot"));
  c2->submit(make_command(c2->id(), 0, "hot"));
  simulator.run();
  EXPECT_EQ(c0->committed_count(), 1u);
  EXPECT_EQ(c2->committed_count(), 1u);
  const std::uint64_t slow =
      replicas[0]->slow_path_commits() + replicas[2]->slow_path_commits();
  EXPECT_GE(slow, 1u);
}

TEST_F(EpaxosCluster, ConflictingCommandsExecuteInSameOrderEverywhere) {
  auto c0 = make_client(NodeId{1000}, 0, rids[0]);
  auto c1 = make_client(NodeId{1001}, 1, rids[1]);
  auto c2 = make_client(NodeId{1002}, 2, rids[2]);
  for (std::uint64_t s = 0; s < 25; ++s) {
    c0->submit(make_command(c0->id(), s, "hot", "a" + std::to_string(s)));
    c1->submit(make_command(c1->id(), s, "hot", "b" + std::to_string(s)));
    c2->submit(make_command(c2->id(), s, "hot", "c" + std::to_string(s)));
  }
  simulator.run_until(TimePoint::epoch() + seconds(5));
  EXPECT_EQ(c0->committed_count(), 25u);
  EXPECT_EQ(c1->committed_count(), 25u);
  EXPECT_EQ(c2->committed_count(), 25u);
  // Every replica executed all 75 and the final value agrees.
  const auto& ref = replicas[0]->store().items();
  for (const auto& r : replicas) {
    EXPECT_EQ(r->executed_count(), 75u);
    EXPECT_EQ(r->store().items(), ref);
  }
}

TEST_F(EpaxosCluster, NonInterferingCommandsExecuteWithoutWaiting) {
  test::ExecTrace trace;
  replicas[0]->set_execute_hook(std::ref(trace));
  auto client = make_client(NodeId{1000}, 0, rids[0]);
  for (std::uint64_t s = 0; s < 10; ++s) {
    client->submit(make_command(client->id(), s, "key" + std::to_string(s)));
  }
  simulator.run();
  EXPECT_EQ(trace.order.size(), 10u);
}

TEST_F(EpaxosCluster, MixedWorkloadConverges) {
  auto c0 = make_client(NodeId{1000}, 0, rids[0]);
  auto c1 = make_client(NodeId{1001}, 1, rids[1]);
  sm::WorkloadConfig wc;
  wc.num_keys = 10;  // high contention
  wc.zipf_alpha = 0.95;
  sm::WorkloadGenerator g0(wc, 1), g1(wc, 2);
  c0->start_load(g0, 300.0);
  c1->start_load(g1, 300.0);
  simulator.run_until(TimePoint::epoch() + seconds(2));
  c0->stop_load();
  c1->stop_load();
  simulator.run_until(TimePoint::epoch() + seconds(5));
  EXPECT_EQ(c0->committed_count(), c0->submitted_count());
  EXPECT_EQ(c1->committed_count(), c1->submitted_count());
  const auto& ref = replicas[0]->store().items();
  for (const auto& r : replicas) EXPECT_EQ(r->store().items(), ref);
}

}  // namespace
}  // namespace domino::epaxos
