#include "statemachine/workload.h"

#include <gtest/gtest.h>

#include <set>

namespace domino::sm {
namespace {

TEST(Workload, KeyValueSizesMatchPaper) {
  WorkloadConfig cfg;  // defaults: 8 B keys/values, the paper's 16 B requests
  WorkloadGenerator gen(cfg, 1);
  for (int i = 0; i < 100; ++i) {
    const Command c = gen.next(NodeId{5});
    EXPECT_EQ(c.key.size(), 8u);
    EXPECT_EQ(c.value.size(), 8u);
  }
}

TEST(Workload, SequenceNumbersIncrease) {
  WorkloadGenerator gen(WorkloadConfig{}, 1);
  const Command a = gen.next(NodeId{5});
  const Command b = gen.next(NodeId{5});
  EXPECT_EQ(a.id.client, NodeId{5});
  EXPECT_EQ(b.id.seq, a.id.seq + 1);
}

TEST(Workload, KeysWithinKeySpace) {
  WorkloadConfig cfg;
  cfg.num_keys = 50;
  WorkloadGenerator gen(cfg, 2);
  for (int i = 0; i < 1000; ++i) {
    const Command c = gen.next(NodeId{1});
    EXPECT_LT(std::stoull(c.key), 50u);
  }
}

TEST(Workload, ZipfSkewVisible) {
  WorkloadConfig cfg;
  cfg.num_keys = 1000;
  cfg.zipf_alpha = 0.95;
  WorkloadGenerator gen(cfg, 3);
  std::map<std::string, int> counts;
  for (int i = 0; i < 20'000; ++i) ++counts[gen.next(NodeId{1}).key];
  // The hottest key should be far hotter than the median key.
  int max_count = 0;
  for (const auto& [k, v] : counts) max_count = std::max(max_count, v);
  EXPECT_GT(max_count, 200);
}

TEST(Workload, DeterministicForSeed) {
  WorkloadGenerator a(WorkloadConfig{}, 42), b(WorkloadConfig{}, 42);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.next(NodeId{1}), b.next(NodeId{1}));
}

}  // namespace
}  // namespace domino::sm
