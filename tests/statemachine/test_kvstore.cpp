#include "statemachine/kvstore.h"

#include <gtest/gtest.h>

namespace domino::sm {
namespace {

Command cmd(std::uint64_t seq, std::string key, std::string value) {
  Command c;
  c.id = RequestId{NodeId{1}, seq};
  c.key = std::move(key);
  c.value = std::move(value);
  return c;
}

TEST(KvStore, ApplyInsertsAndReturnsPrevious) {
  KvStore s;
  EXPECT_FALSE(s.apply(cmd(0, "a", "1")).has_value());
  EXPECT_EQ(s.apply(cmd(1, "a", "2")), "1");
  EXPECT_EQ(s.get("a"), "2");
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.applied_count(), 2u);
}

TEST(KvStore, GetMissingIsNullopt) {
  KvStore s;
  EXPECT_FALSE(s.get("nope").has_value());
}

TEST(KvStore, DistinctKeys) {
  KvStore s;
  s.apply(cmd(0, "a", "1"));
  s.apply(cmd(1, "b", "2"));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.get("a"), "1");
  EXPECT_EQ(s.get("b"), "2");
}

TEST(KvStore, ItemsExposesContents) {
  KvStore s;
  s.apply(cmd(0, "x", "y"));
  EXPECT_EQ(s.items().at("x"), "y");
}

TEST(Command, ConflictSemantics) {
  EXPECT_TRUE(cmd(0, "k", "1").conflicts_with(cmd(1, "k", "2")));
  EXPECT_FALSE(cmd(0, "k", "1").conflicts_with(cmd(1, "j", "1")));
}

TEST(Command, WireRoundTrip) {
  const Command c = cmd(7, "key00001", "val00002");
  wire::ByteWriter w;
  c.encode(w);
  const wire::Payload p = w.take();
  wire::ByteReader r{p};
  EXPECT_EQ(Command::decode(r), c);
}

}  // namespace
}  // namespace domino::sm
