// Shared cluster fixtures for protocol tests: small deployments on
// constant-latency topologies where timing is exactly predictable.
#pragma once

#include <memory>
#include <vector>

#include "net/network.h"
#include "sim/simulator.h"
#include "statemachine/command.h"
#include "statemachine/kvstore.h"

namespace domino::test {

/// Star-ish 4-DC topology with exact RTTs (ms):
///   A-B 20, A-C 40, A-D 60, B-C 30, B-D 50, C-D 10.
inline net::Topology four_dc() {
  return net::Topology{{"A", "B", "C", "D"},
                       {{0, 20, 40, 60}, {20, 0, 30, 50}, {40, 30, 0, 10},
                        {60, 50, 10, 0}}};
}

inline sm::Command make_command(NodeId client, std::uint64_t seq, std::string key = "k",
                                std::string value = "v") {
  sm::Command c;
  c.id = RequestId{client, seq};
  c.key = std::move(key);
  c.value = std::move(value);
  return c;
}

/// Builds replica node-id vectors 0..n-1.
inline std::vector<NodeId> replica_ids(std::size_t n) {
  std::vector<NodeId> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) ids.push_back(NodeId{static_cast<std::uint32_t>(i)});
  return ids;
}

/// Collects executed request ids in order, for convergence checks.
struct ExecTrace {
  std::vector<RequestId> order;
  void operator()(const RequestId& id, TimePoint) { order.push_back(id); }
};

/// Lost-commit consistency check: every command whose commit a client
/// observed must have left a trace in at least one of the given stores (its
/// key present — callers use per-command keys for exact attribution).
/// Returns the ids of acknowledged commands that vanished from every store;
/// non-empty means an acknowledged commit was lost, the violation that
/// amnesiac crashes combined with weakened durability produce.
inline std::vector<RequestId> lost_commits(const std::vector<sm::Command>& acknowledged,
                                           const std::vector<const sm::KvStore*>& stores) {
  std::vector<RequestId> lost;
  for (const sm::Command& c : acknowledged) {
    bool found = false;
    for (const sm::KvStore* s : stores) {
      if (s->items().find(c.key) != s->items().end()) {
        found = true;
        break;
      }
    }
    if (!found) lost.push_back(c.id);
  }
  return lost;
}

}  // namespace domino::test
