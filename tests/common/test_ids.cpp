#include "common/ids.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace domino {
namespace {

TEST(NodeId, DefaultIsInvalid) {
  NodeId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, NodeId::invalid());
}

TEST(NodeId, ValueAndComparison) {
  EXPECT_TRUE(NodeId{3}.valid());
  EXPECT_LT(NodeId{1}, NodeId{2});
  EXPECT_EQ(NodeId{7}.value(), 7u);
  EXPECT_EQ(NodeId{7}.to_string(), "n7");
}

TEST(NodeId, HashableDistinct) {
  std::unordered_set<NodeId> set;
  for (std::uint32_t i = 0; i < 100; ++i) set.insert(NodeId{i});
  EXPECT_EQ(set.size(), 100u);
  EXPECT_TRUE(set.contains(NodeId{42}));
}

TEST(RequestId, OrderingLexicographic) {
  const RequestId a{NodeId{1}, 5};
  const RequestId b{NodeId{1}, 6};
  const RequestId c{NodeId{2}, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (RequestId{NodeId{1}, 5}));
}

TEST(RequestId, HashSpreads) {
  std::unordered_set<RequestId> set;
  for (std::uint32_t c = 0; c < 10; ++c) {
    for (std::uint64_t s = 0; s < 100; ++s) set.insert(RequestId{NodeId{c}, s});
  }
  EXPECT_EQ(set.size(), 1000u);
}

TEST(RequestId, ToStringFormat) {
  EXPECT_EQ((RequestId{NodeId{3}, 9}).to_string(), "n3#9");
}

TEST(Ballot, RoundThenNodeOrdering) {
  EXPECT_LT((Ballot{0, NodeId{9}}), (Ballot{1, NodeId{0}}));
  EXPECT_LT((Ballot{1, NodeId{0}}), (Ballot{1, NodeId{1}}));
  EXPECT_EQ((Ballot{2, NodeId{3}}), (Ballot{2, NodeId{3}}));
}

}  // namespace
}  // namespace domino
