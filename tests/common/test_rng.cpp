#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace domino {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ZeroSeedIsUsable) {
  Rng r(0);
  EXPECT_NE(r.next_u64(), 0u);  // splitmix avoids the stuck all-zero state
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10'000; ++i) {
    const double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformI64Bounds) {
  Rng r(9);
  for (int i = 0; i < 10'000; ++i) {
    const auto v = r.uniform_i64(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
  // Degenerate single-point range.
  EXPECT_EQ(r.uniform_i64(42, 42), 42);
}

TEST(Rng, UniformI64CoversRange) {
  Rng r(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = r.uniform_i64(0, 3);
    if (v == 0) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng r(13);
  const int n = 200'000;
  double sum = 0, sumsq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal();
    sum += v;
    sumsq += v * v;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalWithParameters) {
  Rng r(17);
  const int n = 100'000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += r.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng r(19);
  const int n = 200'000;
  double sum = 0;
  for (int i = 0; i < n; ++i) {
    const double v = r.exponential(5.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, LognormalMedian) {
  Rng r(23);
  const int n = 100'001;
  std::vector<double> vals(n);
  for (auto& v : vals) v = r.lognormal(1.0, 0.5);
  std::nth_element(vals.begin(), vals.begin() + n / 2, vals.end());
  EXPECT_NEAR(vals[n / 2], std::exp(1.0), 0.08);
}

TEST(Rng, ChanceProbability) {
  Rng r(29);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (r.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, ForkIsIndependent) {
  Rng a(31);
  Rng b = a.fork();
  // Fork must not replay the parent's stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformDurationWithinBounds) {
  Rng r(37);
  for (int i = 0; i < 1'000; ++i) {
    const Duration d = r.uniform_duration(milliseconds(1), milliseconds(2));
    EXPECT_GE(d, milliseconds(1));
    EXPECT_LE(d, milliseconds(2));
  }
}

}  // namespace
}  // namespace domino
