#include "common/interval_set.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"

namespace domino {
namespace {

TEST(IntervalSet, EmptyContainsNothing) {
  IntervalSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.contains(0));
  EXPECT_EQ(s.first_gap(5), 5);
  EXPECT_FALSE(s.contiguous_end(0).has_value());
}

TEST(IntervalSet, SinglePoint) {
  IntervalSet s;
  s.insert(7);
  EXPECT_TRUE(s.contains(7));
  EXPECT_FALSE(s.contains(6));
  EXPECT_FALSE(s.contains(8));
  EXPECT_EQ(s.cardinality(), 1u);
  EXPECT_EQ(s.first_gap(7), 8);
}

TEST(IntervalSet, CoalesceAdjacent) {
  IntervalSet s;
  s.insert(1, 3);
  s.insert(4, 6);  // adjacent -> one interval
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_TRUE(s.covers(1, 6));
}

TEST(IntervalSet, CoalesceOverlapping) {
  IntervalSet s;
  s.insert(1, 5);
  s.insert(3, 10);
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_TRUE(s.covers(1, 10));
  EXPECT_EQ(s.cardinality(), 10u);
}

TEST(IntervalSet, DisjointStaySeparate) {
  IntervalSet s;
  s.insert(1, 3);
  s.insert(10, 12);
  EXPECT_EQ(s.interval_count(), 2u);
  EXPECT_FALSE(s.contains(5));
  EXPECT_FALSE(s.covers(1, 12));
}

TEST(IntervalSet, InsertBridgesGap) {
  IntervalSet s;
  s.insert(1, 3);
  s.insert(7, 9);
  s.insert(4, 6);
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_TRUE(s.covers(1, 9));
}

TEST(IntervalSet, InsertSwallowsMultiple) {
  IntervalSet s;
  s.insert(2);
  s.insert(5);
  s.insert(8);
  s.insert(0, 10);
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_EQ(s.cardinality(), 11u);
}

TEST(IntervalSet, IdempotentInsert) {
  IntervalSet s;
  s.insert(3, 5);
  s.insert(3, 5);
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_EQ(s.cardinality(), 3u);
}

TEST(IntervalSet, FirstGapInsideInterval) {
  IntervalSet s;
  s.insert(0, 9);
  EXPECT_EQ(s.first_gap(0), 10);
  EXPECT_EQ(s.first_gap(5), 10);
  EXPECT_EQ(s.first_gap(10), 10);
  EXPECT_EQ(s.first_gap(-3), -3);
}

TEST(IntervalSet, ContiguousEnd) {
  IntervalSet s;
  s.insert(0, 4);
  s.insert(6, 8);
  EXPECT_EQ(s.contiguous_end(0), 4);
  EXPECT_EQ(s.contiguous_end(3), 4);
  EXPECT_FALSE(s.contiguous_end(5).has_value());
  EXPECT_EQ(s.contiguous_end(6), 8);
}

TEST(IntervalSet, NegativeKeys) {
  IntervalSet s;
  s.insert(-10, -5);
  EXPECT_TRUE(s.contains(-7));
  EXPECT_FALSE(s.contains(-11));
  s.insert(-4, 0);
  EXPECT_EQ(s.interval_count(), 1u);
}

TEST(IntervalSet, ToStringFormat) {
  IntervalSet s;
  s.insert(1, 2);
  s.insert(5);
  EXPECT_EQ(s.to_string(), "{[1,2], [5,5]}");
}

// Property test: IntervalSet::contains agrees with a reference std::set
// under random interleaved insertions.
TEST(IntervalSetProperty, MatchesReferenceSet) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    IntervalSet s;
    std::set<std::int64_t> reference;
    for (int op = 0; op < 300; ++op) {
      const std::int64_t lo = rng.uniform_i64(-50, 50);
      const std::int64_t hi = lo + rng.uniform_i64(0, 8);
      s.insert(lo, hi);
      for (std::int64_t k = lo; k <= hi; ++k) reference.insert(k);
    }
    for (std::int64_t k = -60; k <= 70; ++k) {
      EXPECT_EQ(s.contains(k), reference.contains(k)) << "seed=" << seed << " k=" << k;
    }
    EXPECT_EQ(s.cardinality(), reference.size());
    // Intervals must be disjoint and non-adjacent (maximally coalesced).
    std::int64_t prev_hi = std::numeric_limits<std::int64_t>::min();
    bool first = true;
    for (const auto& [lo, hi] : s.intervals()) {
      EXPECT_LE(lo, hi);
      if (!first) EXPECT_GT(lo, prev_hi + 1);
      prev_hi = hi;
      first = false;
    }
  }
}

// Property: first_gap always returns a key not in the set, and everything
// between `from` and the gap is in the set.
TEST(IntervalSetProperty, FirstGapCorrect) {
  Rng rng(99);
  IntervalSet s;
  for (int op = 0; op < 100; ++op) {
    const std::int64_t lo = rng.uniform_i64(0, 200);
    s.insert(lo, lo + rng.uniform_i64(0, 5));
  }
  for (std::int64_t from = 0; from <= 210; from += 7) {
    const std::int64_t gap = s.first_gap(from);
    EXPECT_FALSE(s.contains(gap));
    for (std::int64_t k = from; k < gap; ++k) EXPECT_TRUE(s.contains(k));
  }
}

}  // namespace
}  // namespace domino
