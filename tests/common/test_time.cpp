#include "common/time.h"

#include <gtest/gtest.h>

namespace domino {
namespace {

TEST(Duration, FactoriesProduceNanoseconds) {
  EXPECT_EQ(nanoseconds(7).nanos(), 7);
  EXPECT_EQ(microseconds(3).nanos(), 3'000);
  EXPECT_EQ(milliseconds(5).nanos(), 5'000'000);
  EXPECT_EQ(seconds(2).nanos(), 2'000'000'000);
  EXPECT_EQ(milliseconds_d(1.5).nanos(), 1'500'000);
  EXPECT_EQ(seconds_d(0.25).nanos(), 250'000'000);
}

TEST(Duration, ConversionsRoundTrip) {
  const Duration d = milliseconds(42);
  EXPECT_DOUBLE_EQ(d.millis(), 42.0);
  EXPECT_DOUBLE_EQ(d.micros(), 42'000.0);
  EXPECT_DOUBLE_EQ(d.seconds(), 0.042);
}

TEST(Duration, Arithmetic) {
  EXPECT_EQ(milliseconds(3) + milliseconds(4), milliseconds(7));
  EXPECT_EQ(milliseconds(10) - milliseconds(4), milliseconds(6));
  EXPECT_EQ(-milliseconds(5), milliseconds(-5));
  EXPECT_EQ(milliseconds(3) * 4, milliseconds(12));
  EXPECT_EQ(milliseconds(12) / 4, milliseconds(3));
  EXPECT_DOUBLE_EQ(milliseconds(10) / milliseconds(4), 2.5);
}

TEST(Duration, CompoundAssignment) {
  Duration d = milliseconds(1);
  d += milliseconds(2);
  EXPECT_EQ(d, milliseconds(3));
  d -= milliseconds(1);
  EXPECT_EQ(d, milliseconds(2));
}

TEST(Duration, Ordering) {
  EXPECT_LT(milliseconds(1), milliseconds(2));
  EXPECT_GT(seconds(1), milliseconds(999));
  EXPECT_LE(Duration::zero(), Duration::zero());
  EXPECT_LT(Duration::zero(), Duration::max());
}

TEST(Duration, ScaleByFactor) {
  EXPECT_EQ(scale(milliseconds(10), 0.5), milliseconds(5));
  EXPECT_EQ(scale(milliseconds(10), 2.0), milliseconds(20));
  EXPECT_EQ(scale(milliseconds(10), 0.0), Duration::zero());
}

TEST(TimePoint, ArithmeticWithDurations) {
  const TimePoint t = TimePoint::epoch() + milliseconds(100);
  EXPECT_EQ(t.nanos(), 100'000'000);
  EXPECT_EQ((t + milliseconds(50)).nanos(), 150'000'000);
  EXPECT_EQ((t - milliseconds(50)).nanos(), 50'000'000);
  EXPECT_EQ(t - TimePoint::epoch(), milliseconds(100));
}

TEST(TimePoint, Ordering) {
  EXPECT_LT(TimePoint::epoch(), TimePoint::epoch() + nanoseconds(1));
  EXPECT_LT(TimePoint::epoch(), TimePoint::max());
}

TEST(TimePoint, CompoundAdvance) {
  TimePoint t = TimePoint::epoch();
  t += seconds(1);
  EXPECT_EQ(t.seconds(), 1.0);
}

TEST(TimeToString, HumanReadable) {
  EXPECT_EQ(milliseconds(5).to_string(), "5ms");
  EXPECT_EQ(microseconds(1500).to_string(), "1.500ms");
  EXPECT_NE(TimePoint::epoch().to_string().find("t="), std::string::npos);
}

}  // namespace
}  // namespace domino
