#include "common/window_estimator.h"

#include <gtest/gtest.h>

namespace domino {
namespace {

TimePoint at_ms(std::int64_t ms) { return TimePoint::epoch() + milliseconds(ms); }

TEST(WindowEstimator, EmptyReturnsNullopt) {
  WindowEstimator w(seconds(1));
  EXPECT_FALSE(w.percentile(at_ms(0), 95).has_value());
  EXPECT_TRUE(w.empty(at_ms(0)));
}

TEST(WindowEstimator, SingleSampleAnyPercentile) {
  WindowEstimator w(seconds(1));
  w.add(at_ms(0), milliseconds(10));
  EXPECT_EQ(*w.percentile(at_ms(0), 0), milliseconds(10));
  EXPECT_EQ(*w.percentile(at_ms(0), 50), milliseconds(10));
  EXPECT_EQ(*w.percentile(at_ms(0), 100), milliseconds(10));
}

TEST(WindowEstimator, NearestRankPercentiles) {
  WindowEstimator w(seconds(10));
  for (int i = 1; i <= 10; ++i) w.add(at_ms(i), milliseconds(i));
  // Nearest-rank: p50 of 10 samples -> 5th smallest.
  EXPECT_EQ(*w.percentile(at_ms(10), 50), milliseconds(5));
  EXPECT_EQ(*w.percentile(at_ms(10), 90), milliseconds(9));
  EXPECT_EQ(*w.percentile(at_ms(10), 100), milliseconds(10));
  EXPECT_EQ(*w.percentile(at_ms(10), 0), milliseconds(1));
}

TEST(WindowEstimator, EvictsOldSamples) {
  WindowEstimator w(milliseconds(100));
  w.add(at_ms(0), milliseconds(1));
  w.add(at_ms(50), milliseconds(2));
  w.add(at_ms(200), milliseconds(3));
  // At t=200 the window is [100, 200]; only samples 2? No: sample at 50 is
  // older than 100ms, sample at 200 remains; count should be 1.
  EXPECT_EQ(w.count(at_ms(200)), 1u);
  EXPECT_EQ(*w.percentile(at_ms(200), 95), milliseconds(3));
}

TEST(WindowEstimator, WindowBoundaryInclusive) {
  WindowEstimator w(milliseconds(100));
  w.add(at_ms(100), milliseconds(1));
  w.add(at_ms(200), milliseconds(2));
  // Cutoff at t=200 is exactly 100; the sample at 100 is still inside.
  EXPECT_EQ(w.count(at_ms(200)), 2u);
}

TEST(WindowEstimator, QueryLaterThanLastInsert) {
  WindowEstimator w(milliseconds(100));
  w.add(at_ms(0), milliseconds(5));
  // Querying far past the window finds nothing.
  EXPECT_FALSE(w.percentile(at_ms(500), 95).has_value());
  EXPECT_EQ(w.count(at_ms(500)), 0u);
}

TEST(WindowEstimator, P95PicksHighSample) {
  WindowEstimator w(seconds(10));
  for (int i = 0; i < 100; ++i) w.add(at_ms(i), milliseconds(10));
  w.add(at_ms(100), milliseconds(50));  // one outlier among 101
  EXPECT_EQ(*w.percentile(at_ms(100), 95), milliseconds(10));
  EXPECT_EQ(*w.percentile(at_ms(100), 100), milliseconds(50));
}

TEST(WindowEstimator, SetWindowShrinks) {
  WindowEstimator w(seconds(10));
  w.add(at_ms(0), milliseconds(1));
  w.add(at_ms(900), milliseconds(2));
  w.set_window(milliseconds(500));
  EXPECT_EQ(w.count(at_ms(900)), 1u);
}

TEST(WindowEstimator, NegativeDurationsSupported) {
  // OWD measurements can be negative under clock skew.
  WindowEstimator w(seconds(1));
  w.add(at_ms(0), milliseconds(-5));
  w.add(at_ms(1), milliseconds(5));
  EXPECT_EQ(*w.percentile(at_ms(1), 0), milliseconds(-5));
  EXPECT_EQ(*w.percentile(at_ms(1), 100), milliseconds(5));
}

}  // namespace
}  // namespace domino
