#include "common/stats.h"

#include <gtest/gtest.h>

namespace domino {
namespace {

TEST(StatAccumulator, BasicStats) {
  StatAccumulator s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_EQ(s.count(), 100u);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(95), 95.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
}

TEST(StatAccumulator, EmptyThrows) {
  StatAccumulator s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW((void)s.mean(), std::logic_error);
  EXPECT_THROW((void)s.percentile(50), std::logic_error);
}

TEST(StatAccumulator, AddDurationConvertsToMillis) {
  StatAccumulator s;
  s.add(milliseconds(25));
  EXPECT_DOUBLE_EQ(s.percentile(50), 25.0);
}

TEST(StatAccumulator, CdfAt) {
  StatAccumulator s;
  for (int i = 1; i <= 10; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.cdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(5.0), 0.5);
  EXPECT_DOUBLE_EQ(s.cdf_at(10.0), 1.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(100.0), 1.0);
}

TEST(StatAccumulator, MergeCombines) {
  StatAccumulator a, b;
  a.add(1.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(StatAccumulator, StddevOfConstantIsZero) {
  StatAccumulator s;
  s.add(5.0);
  s.add(5.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(StatAccumulator, StddevSample) {
  StatAccumulator s;
  s.add(2.0);
  s.add(4.0);
  s.add(4.0);
  s.add(4.0);
  s.add(5.0);
  s.add(5.0);
  s.add(7.0);
  s.add(9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.01);  // sample stddev
}

TEST(StatAccumulator, BoxSummaryOrdered) {
  StatAccumulator s;
  for (int i = 1; i <= 1000; ++i) s.add(static_cast<double>(i));
  const auto b = s.box_summary();
  EXPECT_LE(b.p5, b.p25);
  EXPECT_LE(b.p25, b.p50);
  EXPECT_LE(b.p50, b.p75);
  EXPECT_LE(b.p75, b.p95);
  EXPECT_DOUBLE_EQ(b.p50, 500.0);
}

TEST(StatAccumulator, RenderCdfHasRows) {
  StatAccumulator s;
  for (int i = 1; i <= 10; ++i) s.add(static_cast<double>(i));
  const std::string cdf = s.render_cdf(5);
  EXPECT_EQ(std::count(cdf.begin(), cdf.end(), '\n'), 5);
}

TEST(StatAccumulator, SortedValuesAscending) {
  StatAccumulator s;
  s.add(3.0);
  s.add(1.0);
  s.add(2.0);
  const auto& v = s.sorted_values();
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(TimeSeries, BucketsByTime) {
  TimeSeries ts(seconds(1));
  ts.add(TimePoint::epoch() + milliseconds(100), 1.0);
  ts.add(TimePoint::epoch() + milliseconds(900), 3.0);
  ts.add(TimePoint::epoch() + milliseconds(1500), 7.0);
  ASSERT_EQ(ts.bucket_count(), 2u);
  EXPECT_DOUBLE_EQ(ts.bucket(0).mean(), 2.0);
  EXPECT_DOUBLE_EQ(ts.bucket(1).mean(), 7.0);
  EXPECT_EQ(ts.bucket_start(1), TimePoint::epoch() + seconds(1));
}

TEST(TimeSeries, IgnoresNegativeTimes) {
  TimeSeries ts(seconds(1));
  ts.add(TimePoint::epoch() - milliseconds(5), 1.0);
  EXPECT_EQ(ts.bucket_count(), 0u);
}

}  // namespace
}  // namespace domino
