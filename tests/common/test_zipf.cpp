#include "common/zipf.h"

#include <gtest/gtest.h>

#include <vector>

namespace domino {
namespace {

TEST(Zipf, RejectsBadParameters) {
  EXPECT_THROW(ZipfGenerator(0, 0.75), std::invalid_argument);
  EXPECT_THROW(ZipfGenerator(10, -1.0), std::invalid_argument);
}

TEST(Zipf, SamplesWithinRange) {
  ZipfGenerator z(100, 0.75);
  Rng rng(1);
  for (int i = 0; i < 10'000; ++i) EXPECT_LT(z.sample(rng), 100u);
}

TEST(Zipf, AlphaZeroIsUniform) {
  ZipfGenerator z(10, 0.0);
  Rng rng(2);
  std::vector<int> counts(10, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(rng)];
  for (int c : counts) EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
}

TEST(Zipf, SkewFavorsLowRanks) {
  ZipfGenerator z(1000, 0.95);
  Rng rng(3);
  std::vector<int> counts(1000, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[999] * 5);
}

TEST(Zipf, HigherAlphaIsMoreSkewed) {
  Rng rng_a(4), rng_b(4);
  ZipfGenerator mild(1000, 0.75), heavy(1000, 0.95);
  const int n = 50'000;
  int mild_top = 0, heavy_top = 0;
  for (int i = 0; i < n; ++i) {
    if (mild.sample(rng_a) == 0) ++mild_top;
    if (heavy.sample(rng_b) == 0) ++heavy_top;
  }
  EXPECT_GT(heavy_top, mild_top);
}

TEST(Zipf, RatioMatchesTheory) {
  // P(0)/P(1) should be 2^alpha.
  ZipfGenerator z(2, 1.0);
  Rng rng(5);
  int zero = 0;
  const int n = 300'000;
  for (int i = 0; i < n; ++i) {
    if (z.sample(rng) == 0) ++zero;
  }
  // P(0) = 1 / (1 + 1/2) = 2/3.
  EXPECT_NEAR(static_cast<double>(zero) / n, 2.0 / 3.0, 0.01);
}

}  // namespace
}  // namespace domino
