#include "harness/runner.h"

#include <gtest/gtest.h>

namespace domino::harness {
namespace {

Scenario base_scenario() {
  Scenario s;
  s.topology = net::Topology::globe();
  // Replicas WA, PR, NSW as in Figure 8(c); clients in all six DCs.
  s.replica_dcs = {s.topology.index_of("WA"), s.topology.index_of("PR"),
                   s.topology.index_of("NSW")};
  s.client_dcs = {0, 1, 2, 3, 4, 5};
  s.rps = 100;
  s.warmup = seconds(1);
  s.measure = seconds(5);
  s.seed = 7;
  return s;
}

TEST(Runner, ProtocolNames) {
  EXPECT_EQ(protocol_name(Protocol::kDomino), "Domino");
  EXPECT_EQ(protocol_name(Protocol::kMultiPaxos), "Multi-Paxos");
}

TEST(Runner, ClosestReplicaUsesRtt) {
  const auto topo = net::Topology::globe();
  const std::vector<std::size_t> replicas = {topo.index_of("WA"), topo.index_of("PR"),
                                             topo.index_of("NSW")};
  EXPECT_EQ(closest_replica(topo, replicas, topo.index_of("VA")), 0u);   // WA at 67
  EXPECT_EQ(closest_replica(topo, replicas, topo.index_of("SG")), 2u);   // NSW at 87
  EXPECT_EQ(closest_replica(topo, replicas, topo.index_of("PR")), 1u);   // itself
}

TEST(Runner, RejectsBadScenarios) {
  Scenario s = base_scenario();
  s.replica_dcs.clear();
  EXPECT_THROW((void)run_domino(s), std::invalid_argument);
  s = base_scenario();
  s.leader_index = 9;
  EXPECT_THROW((void)run_domino(s), std::invalid_argument);
}

TEST(Runner, DominoBeatsMultiPaxosOnGlobe) {
  // The headline result (Figure 8c): Domino's median commit latency is well
  // below Multi-Paxos's on the Globe deployment.
  const Scenario s = base_scenario();
  const RunResult domino = run_domino(s);
  const RunResult mp = run_multipaxos(s);
  EXPECT_LT(domino.commit_ms.percentile(50), mp.commit_ms.percentile(50) - 30.0);
}

TEST(Runner, DominoClientsSplitAcrossSubsystems) {
  const RunResult r = run_domino(base_scenario());
  // Some clients are co-located with replicas (DM), some remote (DFP).
  EXPECT_GT(r.dfp_chosen, 0u);
  EXPECT_GT(r.dm_chosen, 0u);
  EXPECT_GT(r.fast_path, 0u);
}

TEST(Runner, ExecutionLatencyAtLeastCommitDelayShape) {
  const RunResult r = run_domino(base_scenario());
  ASSERT_FALSE(r.exec_ms.empty());
  ASSERT_FALSE(r.commit_ms.empty());
  // Execution requires frontier passage; its median cannot be faster than
  // one one-way delay; sanity-bound it against absurd values.
  EXPECT_GT(r.exec_ms.percentile(50), 10.0);
  EXPECT_LT(r.exec_ms.percentile(50), 2000.0);
}

TEST(Runner, ThroughputComputed) {
  RunResult r = run_multipaxos(base_scenario());
  EXPECT_GT(r.throughput_rps(), 0.0);
  EXPECT_NEAR(r.throughput_rps(), 600.0, 80.0);  // 6 clients x 100 rps
}

TEST(Runner, CapacityModelLimitsThroughput) {
  // With a 0.2 ms per-message service time the Multi-Paxos leader saturates
  // around 1/0.0002 / ~4 messages-per-request ~ 1xxx rps; offered 600 rps
  // from 6 clients still fits, but the service time must raise latency.
  Scenario slow = base_scenario();
  slow.measure = seconds(3);
  Scenario fast = slow;
  slow.replica_service_time = microseconds(200);
  const RunResult with_cost = run_multipaxos(slow);
  const RunResult without = run_multipaxos(fast);
  EXPECT_GT(with_cost.commit_ms.percentile(95), without.commit_ms.percentile(95));
}

}  // namespace
}  // namespace domino::harness
