#include "harness/collector.h"

#include <gtest/gtest.h>

namespace domino::harness {
namespace {

RequestId rid(std::uint64_t seq) { return RequestId{NodeId{1000}, seq}; }
TimePoint at_ms(std::int64_t ms) { return TimePoint::epoch() + milliseconds(ms); }

TEST(LatencyCollector, RecordsCommitLatencyInsideWindow) {
  LatencyCollector c(at_ms(1000), at_ms(2000), 2);
  c.on_send(0, rid(0), at_ms(1500));
  c.on_commit(0, rid(0), at_ms(1500), at_ms(1560));
  EXPECT_EQ(c.commit_ms().count(), 1u);
  EXPECT_DOUBLE_EQ(c.commit_ms().percentile(50), 60.0);
  EXPECT_EQ(c.commit_ms_of(0).count(), 1u);
  EXPECT_EQ(c.commit_ms_of(1).count(), 0u);
}

TEST(LatencyCollector, IgnoresRequestsOutsideWindow) {
  LatencyCollector c(at_ms(1000), at_ms(2000), 1);
  c.on_send(0, rid(0), at_ms(500));   // warmup
  c.on_send(0, rid(1), at_ms(2500));  // cooldown
  c.on_commit(0, rid(0), at_ms(500), at_ms(560));
  c.on_commit(0, rid(1), at_ms(2500), at_ms(2560));
  EXPECT_EQ(c.commit_ms().count(), 0u);
  EXPECT_EQ(c.tracked_count(), 0u);
}

TEST(LatencyCollector, WindowBoundariesInclusive) {
  LatencyCollector c(at_ms(1000), at_ms(2000), 1);
  c.on_send(0, rid(0), at_ms(1000));
  c.on_send(0, rid(1), at_ms(2000));
  EXPECT_EQ(c.tracked_count(), 2u);
}

TEST(LatencyCollector, ExecSamplesPerReplica) {
  LatencyCollector c(at_ms(0), at_ms(1000), 1);
  c.on_send(0, rid(0), at_ms(100));
  // Three replicas execute the same command at different times.
  c.on_execute(rid(0), at_ms(150));
  c.on_execute(rid(0), at_ms(180));
  c.on_execute(rid(0), at_ms(220));
  EXPECT_EQ(c.exec_ms().count(), 3u);
  EXPECT_DOUBLE_EQ(c.exec_ms().percentile(0), 50.0);
  EXPECT_DOUBLE_EQ(c.exec_ms().percentile(100), 120.0);
}

TEST(LatencyCollector, ExecOfUntrackedIgnored) {
  LatencyCollector c(at_ms(0), at_ms(1000), 1);
  c.on_execute(rid(9), at_ms(100));
  EXPECT_EQ(c.exec_ms().count(), 0u);
}

TEST(LatencyCollector, CommittedCountOnlyWindowed) {
  LatencyCollector c(at_ms(1000), at_ms(2000), 1);
  c.on_send(0, rid(0), at_ms(1100));
  c.on_commit(0, rid(0), at_ms(1100), at_ms(1200));
  c.on_commit(0, rid(1), at_ms(900), at_ms(950));  // sent pre-window
  EXPECT_EQ(c.committed_count(), 1u);
}

}  // namespace
}  // namespace domino::harness
