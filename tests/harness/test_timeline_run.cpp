// Integration tests of the windowed-telemetry sampler and SLO engine on
// real simulated runs: off-by-default equivalence, flush conservation
// (window deltas sum to the lifetime totals), byte-identical same-seed
// timelines, and SLO/steady-state evaluation over a faulted run.
#include <gtest/gtest.h>

#include <fstream>

#include "harness/run_report.h"

namespace domino::harness {
namespace {

Scenario timeline_scenario() {
  Scenario s;
  s.topology = net::Topology::globe();
  s.replica_dcs = {s.topology.index_of("WA"), s.topology.index_of("PR"),
                   s.topology.index_of("NSW")};
  s.client_dcs = {0, 1, 2};
  s.rps = 100;
  s.warmup = seconds(1);
  s.measure = seconds(3);
  s.cooldown = seconds(1);
  s.seed = 23;
  s.timeseries_interval = milliseconds(200);
  return s;
}

Scenario faulted_scenario() {
  Scenario s = timeline_scenario();
  s.faults.crash_for(TimePoint::epoch() + milliseconds(1400), NodeId{1},
                     milliseconds(400));
  s.client_request_timeout = milliseconds(300);
  s.client_max_retries = 8;
  s.slo.rules.push_back(obs::SloRule{
      "commit_p95",
      "client.commit_latency_ns",
      obs::SloRule::Kind::kLatencyCeiling,
      95.0,
      /*threshold=*/1.5e9,
      /*burn_windows=*/2,
  });
  s.slo.steady_metric = "client.committed";
  s.slo.steady_tolerance = 0.5;
  s.slo.steady_windows = 2;
  return s;
}

TEST(TimelineRun, OffByDefaultLeavesExportsUntouched) {
  Scenario s = timeline_scenario();
  s.timeseries_interval = Duration::zero();
  const RunResult r = run_domino(s);
  EXPECT_EQ(r.timeseries, nullptr);
  EXPECT_TRUE(r.slo.rules.empty());
  EXPECT_TRUE(r.slo.steady.empty());
  ASSERT_NE(r.metrics, nullptr);
  EXPECT_EQ(r.metrics->find_counter("slo.steady.reached"), nullptr);
  const RunReport report = make_report(Protocol::kDomino, s, r);
  EXPECT_EQ(report.to_json().find("\"timeline\""), std::string::npos);
  EXPECT_EQ(report.to_json().find("\"slo\""), std::string::npos);
  const std::string csv = report.timeline_csv();
  EXPECT_EQ(csv.find('\n'), csv.size() - 1);  // header only
}

TEST(TimelineRun, SamplerDoesNotPerturbTheRun) {
  // The sampler only reads metrics, so enabling it must not change what
  // the protocol does.
  Scenario s = timeline_scenario();
  const RunResult sampled = run_domino(s);
  s.timeseries_interval = Duration::zero();
  const RunResult plain = run_domino(s);
  EXPECT_EQ(sampled.committed, plain.committed);
  EXPECT_EQ(sampled.packets_sent, plain.packets_sent);
  EXPECT_EQ(sampled.bytes_sent, plain.bytes_sent);
  EXPECT_EQ(sampled.fault_digest, plain.fault_digest);
  EXPECT_EQ(sampled.commit_ms.mean(), plain.commit_ms.mean());
  EXPECT_EQ(sampled.fast_path, plain.fast_path);
}

TEST(TimelineRun, WindowsTileTheRun) {
  const Scenario s = timeline_scenario();
  const RunResult r = run_domino(s);
  ASSERT_NE(r.timeseries, nullptr);
  const auto& windows = r.timeseries->windows();
  // 5s of virtual time at 200ms per window, plus the end-of-run flush
  // (skipped when it lands exactly on a tick).
  ASSERT_GE(windows.size(), 24u);
  ASSERT_LE(windows.size(), 26u);
  EXPECT_EQ(windows.front().start, TimePoint::epoch());
  EXPECT_EQ(windows.back().end,
            TimePoint::epoch() + s.warmup + s.measure + s.cooldown);
  for (std::size_t i = 1; i < windows.size(); ++i) {
    EXPECT_EQ(windows[i].start, windows[i - 1].end);  // gap-free tiling
  }
  EXPECT_EQ(r.timeseries->dropped_windows(), 0u);
}

TEST(TimelineRun, WindowDeltasSumToLifetimeTotals) {
  // Flush conservation: every recorded sample lands in exactly one window.
  const RunResult r = run_domino(timeline_scenario());
  ASSERT_NE(r.timeseries, nullptr);
  ASSERT_NE(r.metrics, nullptr);

  const auto* commits = r.timeseries->find_counter("client.committed");
  ASSERT_NE(commits, nullptr);
  std::uint64_t committed = 0;
  for (const std::uint64_t d : commits->deltas) committed += d;
  EXPECT_EQ(committed, r.metrics->find_counter("client.committed")->value());

  const auto* lat = r.timeseries->find_histogram("client.commit_latency_ns");
  ASSERT_NE(lat, nullptr);
  std::uint64_t samples = 0;
  for (const obs::WindowHistogram& w : lat->windows) samples += w.count;
  EXPECT_EQ(samples, r.metrics->find_histogram("client.commit_latency_ns")->count());
  EXPECT_GT(samples, 0u);
}

TEST(TimelineRun, SameSeedTimelineIsByteIdentical) {
  const Scenario s = faulted_scenario();
  const RunResult a = run_domino(s);
  const RunResult b = run_domino(s);
  const RunReport ra = make_report(Protocol::kDomino, s, a);
  const RunReport rb = make_report(Protocol::kDomino, s, b);
  ASSERT_NE(a.timeseries, nullptr);
  EXPECT_EQ(ra.timeline_csv(), rb.timeline_csv());
  EXPECT_EQ(ra.to_json(), rb.to_json());
}

TEST(TimelineRun, SloEvaluatesRulesAndSteadyStateOverFaults) {
  const Scenario s = faulted_scenario();
  const RunResult r = run_domino(s);
  ASSERT_EQ(r.slo.rules.size(), 1u);
  EXPECT_GT(r.slo.rules[0].windows_evaluated, 0u);

  // One steady-state verdict per scheduled fault event (crash + recover).
  ASSERT_EQ(r.slo.steady.size(), 2u);
  EXPECT_EQ(r.slo.steady[0].fault.kind, "crash");
  EXPECT_EQ(r.slo.steady[1].fault.kind, "recover");
  for (const obs::SteadyStateResult& st : r.slo.steady) {
    EXPECT_GT(st.baseline, 0.0);
    ASSERT_TRUE(st.reached) << "throughput never re-settled after " << st.fault.kind;
    EXPECT_GT(st.time_to_steady, Duration::zero());
    // Settling is bounded by the evaluation horizon (end of load).
    EXPECT_LE(st.fault.at + st.time_to_steady, TimePoint::epoch() + s.warmup + s.measure);
  }

  // The verdicts are surfaced as slo.* metrics too.
  ASSERT_NE(r.metrics, nullptr);
  const auto* reached = r.metrics->find_counter("slo.steady.reached");
  ASSERT_NE(reached, nullptr);
  EXPECT_EQ(reached->value(), 2u);
  EXPECT_NE(r.metrics->find_counter("slo.rule.commit_p95.windows_breached"), nullptr);
}

TEST(TimelineRun, ReportCarriesTimelineAndSloBlocks) {
  const Scenario s = faulted_scenario();
  const RunResult r = run_domino(s);
  const RunReport report = make_report(Protocol::kDomino, s, r);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"timeline\":{\"interval_ms\":200.000"), std::string::npos);
  EXPECT_NE(json.find("\"slo\":{"), std::string::npos);
  EXPECT_NE(json.find("\"steady_state\":["), std::string::npos);
  EXPECT_NE(json.find("\"client.commit_latency_ns\":{\"kind\":\"histogram\""),
            std::string::npos);
}

TEST(TimelineRun, WritesSampleOutputsForTooling) {
  // scripts/check.sh --timeline smoke-feeds these to timeline_summary.py.
  const Scenario s = faulted_scenario();
  const RunResult r = run_domino(s);
  const RunReport report = make_report(Protocol::kDomino, s, r);
  std::ofstream csv("timeline_sample.csv", std::ios::binary);
  ASSERT_TRUE(csv.good());
  csv << report.timeline_csv();
  csv.close();
  std::ofstream json("timeline_sample.json", std::ios::binary);
  ASSERT_TRUE(json.good());
  json << report.to_json();
  json.close();
  EXPECT_GT(report.timeline_csv().size(), 1000u);
}

}  // namespace
}  // namespace domino::harness
