#include "harness/geometry.h"

#include <gtest/gtest.h>

namespace domino::harness {
namespace {

TEST(Geometry, PaperFigure4Example) {
  // Figure 4: replicas at 10/20/30 ms RTT from the client; Multi-Paxos with
  // the 10 ms replica as leader and a 25 ms leader->R2 RTT commits in
  // 30 ms; Fast Paxos needs the supermajority (all three) at 35 ms... The
  // figure's numbers: client RTTs 10, 20, 30; leader-R2 20, leader-R3 25
  // (commit via majority = 20): 10 + 20 = 30 vs Fast Paxos 30? The paper
  // states 30 vs 35; we reconstruct with its edge delays.
  net::Topology topo{{"Client", "R1", "R2", "R3"},
                     {{0, 10, 20, 35}, {10, 0, 20, 25}, {20, 20, 0, 30},
                      {35, 25, 30, 0}}};
  const std::vector<std::size_t> replicas = {1, 2, 3};
  const Duration fp = fast_paxos_latency(topo, replicas, 0);
  const Duration mp = multipaxos_latency(topo, replicas, 0, 0);
  EXPECT_EQ(fp, milliseconds(35));  // supermajority = all three, furthest 35
  EXPECT_EQ(mp, milliseconds(30));  // 10 to leader + 20 majority replication
  EXPECT_LT(mp, fp);
}

TEST(Geometry, FastPaxosLatencyIsQthSmallest) {
  const auto topo = net::Topology::globe();
  const std::vector<std::size_t> replicas = {topo.index_of("WA"), topo.index_of("PR"),
                                             topo.index_of("NSW")};
  // From VA: RTTs 67 (WA), 80 (PR), 196 (NSW); q = 3 -> 196.
  EXPECT_EQ(fast_paxos_latency(topo, replicas, topo.index_of("VA")), milliseconds(196));
}

TEST(Geometry, ReplicationLatencyIsMajority) {
  const auto topo = net::Topology::globe();
  const std::vector<std::size_t> replicas = {topo.index_of("WA"), topo.index_of("PR"),
                                             topo.index_of("NSW")};
  // From WA: 0 (self), 136 (PR), 175 (NSW); majority = 2 -> 136.
  EXPECT_EQ(replication_latency(topo, replicas, 0), milliseconds(136));
}

TEST(Geometry, MenciusUsesClosestReplica) {
  const auto topo = net::Topology::globe();
  const std::vector<std::size_t> replicas = {topo.index_of("WA"), topo.index_of("PR"),
                                             topo.index_of("NSW")};
  // VA -> closest replica WA (67) + L_WA (136) = 203.
  EXPECT_EQ(mencius_latency(topo, replicas, topo.index_of("VA")), milliseconds(203));
}

TEST(Geometry, ColocatedClientGetsIntraDcHop) {
  const auto topo = net::Topology::globe();
  const std::vector<std::size_t> replicas = {topo.index_of("WA"), topo.index_of("PR"),
                                             topo.index_of("NSW")};
  const Duration lat = mencius_latency(topo, replicas, topo.index_of("WA"));
  EXPECT_EQ(lat, microseconds(500) + milliseconds(136));
}

TEST(Geometry, GlobeAnalysisMatchesPaperSection4) {
  // The paper: "Fast Paxos has lower commit latency than Mencius and
  // Multi-Paxos for 32.5% and 70.8% of the cases, respectively" (6 Azure
  // DCs, 3 replicas). Our enumeration should land in the same region.
  const GeometrySummary g = analyze_geometry(net::Topology::globe(), 3);
  EXPECT_NEAR(g.fp_beats_mencius, 0.325, 0.08);
  EXPECT_NEAR(g.fp_beats_multipaxos, 0.708, 0.08);
  // C(6,3) placements x 6 clients x 3 leaders.
  EXPECT_EQ(g.cases.size(), 20u * 6u * 3u);
}

TEST(Geometry, CaseLatenciesAreConsistent) {
  const GeometrySummary g = analyze_geometry(net::Topology::globe(), 3);
  for (const auto& c : g.cases) {
    EXPECT_GT(c.fast_paxos, Duration::zero());
    EXPECT_GT(c.mencius, Duration::zero());
    EXPECT_GT(c.multi_paxos, Duration::zero());
    // Multi-Paxos with the best possible leader is at least as good as
    // Mencius (whose "leader" is fixed to the closest replica).
    Duration best_mp = Duration::max();
    for (std::size_t l = 0; l < c.replica_dcs.size(); ++l) {
      best_mp = std::min(best_mp,
                         multipaxos_latency(net::Topology::globe(), c.replica_dcs,
                                            c.client_dc, l));
    }
    EXPECT_LE(best_mp, c.mencius + microseconds(1));
  }
}

}  // namespace
}  // namespace domino::harness
