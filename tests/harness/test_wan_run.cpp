// Integration tests of WAN trace replay through the harness: Scenario
// trace wiring (in-memory handle and trace_dir path agree byte-for-byte),
// same-seed determinism over empirical links, and the fig3-style acceptance
// run — on a drifting generated trace the live calibration coverage of the
// p95 estimators degrades measurably versus the stationary trace, because
// the windowed percentile predictor lags every route flap and congestion
// epoch.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>

#include "harness/runner.h"
#include "wan/generator.h"

namespace domino::harness {
namespace {

Scenario wan_scenario() {
  Scenario s;
  s.topology = net::Topology::globe();
  s.replica_dcs = {s.topology.index_of("WA"), s.topology.index_of("PR"),
                   s.topology.index_of("NSW")};
  s.client_dcs = {0, 1, 2};  // VA, WA, PR
  s.rps = 100;
  s.warmup = seconds(1);
  s.measure = seconds(6);
  s.cooldown = seconds(1);
  s.seed = 23;
  return s;
}

// Directed pairs the scenario's probes actually ride: every ordered pair of
// datacenters hosting a replica or a client (VA, WA, PR, NSW).
std::vector<std::pair<std::string, std::string>> traced_pairs() {
  const std::vector<std::string> sites = {"VA", "WA", "PR", "NSW"};
  std::vector<std::pair<std::string, std::string>> pairs;
  for (const std::string& a : sites) {
    for (const std::string& b : sites) {
      if (a != b) pairs.emplace_back(a, b);
    }
  }
  return pairs;
}

// One generated trace over all traced pairs. `drifting` switches between
// the stationary preset and an aggressively non-stationary config (route
// flaps every 3 s, congestion epochs, fast diurnal swing) on the same base
// delays and seeds, so the two traces differ only in regime.
std::shared_ptr<const wan::DelayTrace> make_trace(const net::Topology& topo,
                                                  bool drifting) {
  auto trace = std::make_shared<wan::DelayTrace>();
  std::uint64_t seed = 500;
  for (const auto& [from, to] : traced_pairs()) {
    const Duration base = topo.rtt(topo.index_of(from), topo.index_of(to)) / 2;
    wan::GeneratorConfig cfg = drifting ? wan::drifting_config(base, seed)
                                        : wan::stationary_config(base, seed);
    ++seed;
    cfg.duration = seconds(12);
    cfg.sample_interval = milliseconds(25);
    if (drifting) {
      cfg.diurnal_amplitude = milliseconds(4);
      cfg.diurnal_period = seconds(8);
      cfg.congestion_gap = seconds(2);
      cfg.congestion_len = seconds(1);
      cfg.congestion_extra = milliseconds(8);
      cfg.route_steps.clear();
      for (std::int64_t ms = 3000; ms + 1500 <= 12000; ms += 3000) {
        cfg.route_steps.emplace_back(milliseconds(ms), scale(base, 1.35));
        cfg.route_steps.emplace_back(milliseconds(ms + 1500), base);
      }
    }
    wan::TraceGenerator(cfg).generate_into(*trace, from, to);
  }
  return trace;
}

double overall_coverage(const RunResult& r) {
  std::uint64_t samples = 0;
  std::uint64_t covered = 0;
  for (const obs::CalibrationRow& row : r.calibration) {
    samples += row.samples;
    covered += row.covered;
  }
  return samples == 0 ? 0.0
                      : static_cast<double>(covered) / static_cast<double>(samples);
}

TEST(WanRun, TraceDirAndInMemoryTraceAgree) {
  const auto trace = make_trace(net::Topology::globe(), false);

  Scenario in_memory = wan_scenario();
  in_memory.wan_trace = trace;
  const RunResult a = run_domino(in_memory);

  namespace fs = std::filesystem;
  const fs::path file = fs::path(::testing::TempDir()) / "wan_run_trace.csv";
  std::ofstream(file, std::ios::binary) << trace->to_csv();
  Scenario from_file = wan_scenario();
  from_file.trace_dir = file.string();
  const RunResult b = run_domino(from_file);
  fs::remove(file);

  ASSERT_GT(a.committed, 0u);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_EQ(a.commit_ms.mean(), b.commit_ms.mean());
  EXPECT_EQ(a.fast_path, b.fast_path);
}

TEST(WanRun, SameSeedTraceReplayIsDeterministic) {
  Scenario s = wan_scenario();
  s.wan_trace = make_trace(net::Topology::globe(), true);
  const RunResult a = run_domino(s);
  const RunResult b = run_domino(s);
  ASSERT_GT(a.committed, 0u);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.commit_ms.mean(), b.commit_ms.mean());
  EXPECT_EQ(a.commit_ms.percentile(99), b.commit_ms.percentile(99));
}

TEST(WanRun, ReplayedDelaysShapeCommitLatency) {
  // Doubling every traced OWD must show up in end-to-end commit latency.
  auto slow = std::make_shared<wan::DelayTrace>();
  const net::Topology topo = net::Topology::globe();
  std::uint64_t seed = 900;
  for (const auto& [from, to] : traced_pairs()) {
    const Duration base = topo.rtt(topo.index_of(from), topo.index_of(to));  // 2x
    wan::GeneratorConfig cfg = wan::stationary_config(base, seed++);
    cfg.duration = seconds(12);
    cfg.sample_interval = milliseconds(25);
    wan::TraceGenerator(cfg).generate_into(*slow, from, to);
  }
  Scenario fast_s = wan_scenario();
  fast_s.wan_trace = make_trace(topo, false);  // ~nominal delays
  Scenario slow_s = wan_scenario();
  slow_s.wan_trace = slow;
  const RunResult fast = run_domino(fast_s);
  const RunResult slow_r = run_domino(slow_s);
  ASSERT_GT(fast.committed, 0u);
  ASSERT_GT(slow_r.committed, 0u);
  EXPECT_GT(slow_r.commit_ms.percentile(50), fast.commit_ms.percentile(50) * 1.3);
}

TEST(WanRun, CalibrationCoverageDegradesUnderDrift) {
  // The ISSUE's acceptance run: same deployment, same seeds, one run over a
  // stationary trace and one over a drifting trace. The p95 arrival
  // predictions that the paper's Section 3 claim rests on stay calibrated
  // in the stationary regime and lose measurable coverage under drift.
  Scenario s = wan_scenario();
  s.prediction_audit = true;
  s.measurement_percentile = 95.0;

  s.wan_trace = make_trace(net::Topology::globe(), false);
  const RunResult stationary = run_domino(s);
  s.wan_trace = make_trace(net::Topology::globe(), true);
  const RunResult drifting = run_domino(s);

  ASSERT_FALSE(stationary.calibration.empty());
  ASSERT_FALSE(drifting.calibration.empty());
  const double stable_cov = overall_coverage(stationary);
  const double drift_cov = overall_coverage(drifting);
  // Stationary replay keeps the estimators honest...
  EXPECT_GT(stable_cov, 0.80);
  // ...and drift costs a measurable slice of coverage (route flaps leave
  // the windowed p95 underpredicting until the window catches up).
  EXPECT_LT(drift_cov, stable_cov - 0.03);
}

}  // namespace
}  // namespace domino::harness
