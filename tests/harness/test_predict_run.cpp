// Integration tests of the prediction audit on real simulated runs: the
// exact reconciliation invariant (every committed Domino command has exactly
// one DecisionRecord whose oracle-regret identity holds in integer
// nanoseconds), estimator calibration from live probe traffic, and
// byte-identical same-seed exports.
#include <gtest/gtest.h>

#include <fstream>

#include "harness/run_report.h"

namespace domino::harness {
namespace {

Scenario audit_scenario() {
  Scenario s;
  s.topology = net::Topology::globe();
  s.replica_dcs = {s.topology.index_of("WA"), s.topology.index_of("PR"),
                   s.topology.index_of("NSW")};
  s.client_dcs = {0, 1, 2};
  s.rps = 100;
  s.warmup = seconds(1);
  s.measure = seconds(3);
  s.cooldown = seconds(1);
  s.seed = 17;
  s.prediction_audit = true;
  return s;
}

/// The audit's books must balance against the client-side accounting, and
/// every reconciled record must satisfy the exact regret/error identities.
void check_audit_invariants(const RunResult& r) {
  ASSERT_NE(r.predict, nullptr);
  const obs::PredictionAudit& audit = *r.predict;
  EXPECT_EQ(audit.dropped(), 0u);
  // Exactly one decision per submitted command...
  EXPECT_EQ(audit.decisions(), r.submitted);
  // ...reconciled exactly once per client-observed commit; the rest are
  // still pending (in flight or abandoned at the end of the run).
  EXPECT_EQ(audit.reconciled(), r.client_committed);
  EXPECT_EQ(audit.pending(), r.client_abandoned + r.client_inflight_end);
  EXPECT_EQ(audit.fast_path() + audit.slow_path() + audit.dm_commits(),
            audit.reconciled());

  std::int64_t regret_sum = 0;
  for (const obs::DecisionRecord& rec : audit.records()) {
    EXPECT_EQ(rec.outcome == obs::DecisionOutcome::kPending, false);
    ASSERT_NE(rec.realized, Duration::max());
    // Realized latency is commit minus decision time (both virtual).
    EXPECT_EQ(rec.realized, rec.committed_at - rec.decided_at);
    if (rec.error_valid) {
      const Duration chosen = rec.chosen == obs::DecisionPath::kDfp ? rec.predicted_dfp
                                                                    : rec.predicted_dm;
      ASSERT_NE(chosen, Duration::max());
      EXPECT_EQ(rec.error_ns, rec.realized.nanos() - chosen.nanos());
    }
    if (rec.regret_valid) {
      // The oracle-regret identity, recomputed from the record's own
      // estimates: regret == realized - min(finite estimates), exactly.
      Duration best = Duration::max();
      if (rec.predicted_dfp != Duration::max()) best = rec.predicted_dfp;
      if (rec.predicted_dm != Duration::max() && rec.predicted_dm < best) {
        best = rec.predicted_dm;
      }
      ASSERT_NE(best, Duration::max());
      EXPECT_EQ(rec.hindsight_best_ns, best.nanos());
      EXPECT_EQ(rec.regret_ns, rec.realized.nanos() - rec.hindsight_best_ns);
      regret_sum += rec.regret_ns;
    }
    // Attribution only ever points at a replica that rejected late.
    if (rec.blamed.valid()) {
      EXPECT_EQ(rec.outcome, obs::DecisionOutcome::kSlowPath);
      EXPECT_GT(rec.blamed_overshoot_ns, 0);
    }
  }
  EXPECT_EQ(regret_sum, audit.regret_sum_ns());
}

TEST(PredictRun, AutoModeReconcilesEveryCommit) {
  const RunResult r = run_domino(audit_scenario());
  ASSERT_GT(r.client_committed, 0u);
  check_audit_invariants(r);
  // Once the probe feeds warm up every record carries a finite hindsight
  // best; only the first handful (both estimates still max()) are exempt.
  EXPECT_GT(r.predict->regret_samples(), 0u);
  EXPECT_LE(r.predict->regret_samples(), r.predict->reconciled());
  EXPECT_GE(static_cast<double>(r.predict->regret_samples()),
            0.8 * static_cast<double>(r.predict->reconciled()));
  EXPECT_GT(r.predict->fast_path(), 0u);
  // predict.* metrics agree with the audit's own aggregates.
  ASSERT_NE(r.metrics, nullptr);
  EXPECT_EQ(r.metrics->counter("predict.decisions").value(), r.predict->decisions());
  EXPECT_EQ(r.metrics->counter("predict.reconciled").value(), r.predict->reconciled());
}

TEST(PredictRun, ForcedModesStillAudit) {
  for (const auto mode :
       {core::ClientConfig::Mode::kDfpOnly, core::ClientConfig::Mode::kDmOnly}) {
    Scenario s = audit_scenario();
    s.domino_mode = mode;
    const RunResult r = run_domino(s);
    ASSERT_GT(r.client_committed, 0u);
    check_audit_invariants(r);
    const auto expected = mode == core::ClientConfig::Mode::kDfpOnly
                              ? obs::DecisionMode::kDfpForced
                              : obs::DecisionMode::kDmForced;
    for (const obs::DecisionRecord& rec : r.predict->records()) {
      EXPECT_EQ(rec.mode, expected);
    }
    if (mode == core::ClientConfig::Mode::kDmOnly) {
      EXPECT_EQ(r.predict->fast_path(), 0u);
      EXPECT_EQ(r.predict->dm_commits(), r.predict->reconciled());
    }
  }
}

TEST(PredictRun, AdaptiveModeAudits) {
  Scenario s = audit_scenario();
  s.domino_adaptive = true;
  s.additional_delay = milliseconds(-4);  // stress the deadline so misses occur
  const RunResult r = run_domino(s);
  ASSERT_GT(r.client_committed, 0u);
  check_audit_invariants(r);
}

TEST(PredictRun, CalibrationRowsComeFromLiveProbes) {
  const RunResult r = run_domino(audit_scenario());
  // 3 replicas probing 2 peers each + 3 clients probing 3 replicas each.
  ASSERT_EQ(r.calibration.size(), 3u * 2u + 3u * 3u);
  std::uint64_t samples = 0;
  for (const obs::CalibrationRow& row : r.calibration) {
    EXPECT_NE(row.owner, row.target);
    EXPECT_GT(row.samples, 0u);
    EXPECT_LE(row.covered, row.samples);
    EXPECT_GE(row.coverage(), 0.0);
    EXPECT_LE(row.coverage(), 1.0);
    samples += row.samples;
  }
  // The p95 estimator should cover most realized arrivals overall.
  ASSERT_NE(r.metrics, nullptr);
  std::uint64_t covered = 0;
  for (const obs::CalibrationRow& row : r.calibration) covered += row.covered;
  EXPECT_GT(static_cast<double>(covered), 0.5 * static_cast<double>(samples));
}

TEST(PredictRun, OtherProtocolsLeaveTheAuditEmpty) {
  const Scenario s = audit_scenario();
  for (const Protocol p : {Protocol::kMultiPaxos, Protocol::kMencius, Protocol::kEPaxos,
                           Protocol::kFastPaxos}) {
    const RunResult r = run_protocol(p, s);
    ASSERT_NE(r.predict, nullptr) << protocol_name(p);
    EXPECT_EQ(r.predict->decisions(), 0u) << protocol_name(p);
    EXPECT_TRUE(r.calibration.empty()) << protocol_name(p);
  }
}

TEST(PredictRun, DisabledByDefaultAndNullWhenOff) {
  Scenario s = audit_scenario();
  s.prediction_audit = false;
  const RunResult r = run_domino(s);
  EXPECT_EQ(r.predict, nullptr);
  EXPECT_TRUE(r.calibration.empty());
  ASSERT_NE(r.metrics, nullptr);
  EXPECT_EQ(r.metrics->find_counter("predict.decisions"), nullptr);
  // The report omits the predict/calibration blocks entirely.
  const RunReport report = make_report(Protocol::kDomino, s, r);
  EXPECT_EQ(report.to_json().find("\"predict\""), std::string::npos);
  const std::string csv = report.predict_csv();
  EXPECT_EQ(csv.find('\n'), csv.size() - 1);  // header only
}

TEST(PredictRun, SameSeedExportsAreByteIdentical) {
  const Scenario s = audit_scenario();
  const RunResult a = run_domino(s);
  const RunResult b = run_domino(s);
  const RunReport ra = make_report(Protocol::kDomino, s, a);
  const RunReport rb = make_report(Protocol::kDomino, s, b);
  ASSERT_GT(a.predict->reconciled(), 0u);
  EXPECT_EQ(ra.predict_csv(), rb.predict_csv());
  EXPECT_EQ(ra.calibration_csv(), rb.calibration_csv());
  EXPECT_EQ(ra.to_json(), rb.to_json());
}

TEST(PredictRun, WritesSampleCsvsForTooling) {
  // scripts/check.sh --predict smoke-feeds these to predict_summary.py.
  const Scenario s = audit_scenario();
  const RunResult r = run_domino(s);
  const RunReport report = make_report(Protocol::kDomino, s, r);
  const std::string decisions = report.predict_csv();
  const std::string calibration = report.calibration_csv();
  std::ofstream out("predict_sample.csv", std::ios::binary);
  ASSERT_TRUE(out.good());
  out << decisions;
  out.close();
  std::ofstream cal("calibration_sample.csv", std::ios::binary);
  ASSERT_TRUE(cal.good());
  cal << calibration;
  cal.close();
  EXPECT_GT(decisions.size(), 100u);
  EXPECT_GT(calibration.size(), 60u);
}

TEST(PredictRun, AuditedRunMatchesUnauditedResults) {
  // The audit is pure observation: enabling it must not change what the
  // protocol does (same commits, same packet count, same latency stats).
  Scenario s = audit_scenario();
  const RunResult audited = run_domino(s);
  s.prediction_audit = false;
  const RunResult plain = run_domino(s);
  EXPECT_EQ(audited.committed, plain.committed);
  EXPECT_EQ(audited.packets_sent, plain.packets_sent);
  EXPECT_EQ(audited.bytes_sent, plain.bytes_sent);
  EXPECT_EQ(audited.commit_ms.mean(), plain.commit_ms.mean());
  EXPECT_EQ(audited.fast_path, plain.fast_path);
}

}  // namespace
}  // namespace domino::harness
