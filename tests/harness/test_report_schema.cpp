// Golden-file test locking the RunReport JSON *schema*: the set, order and
// shape of keys, not the values. The run report is the contract between the
// harness and every downstream tool (scripts/, notebooks, CI artifacts);
// renaming or dropping a key must fail a test, while changing a value (new
// seed, different latency) must not.
//
// The golden lives at tests/harness/golden/run_report_schema.golden. To
// regenerate after an intentional schema change:
//   DOMINO_UPDATE_GOLDEN=1 ./tests/test_harness \
//       --gtest_filter='ReportSchema.*'
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/run_report.h"

namespace domino::harness {
namespace {

#ifndef DOMINO_GOLDEN_DIR
#error "DOMINO_GOLDEN_DIR must point at tests/harness/golden"
#endif

/// Minimal walker over the JSON our own emitter produces (objects, arrays,
/// strings, numbers). Emits one "path:type" line per member, in document
/// order. Containers with *data-dependent* member names (the metrics
/// registry, the event trace) are recorded as opaque leaves so the schema
/// stays value-independent.
class SchemaWalker {
 public:
  explicit SchemaWalker(const std::string& json) : s_(json) {}

  std::string schema() {
    out_.clear();
    i_ = 0;
    value("$");
    return out_;
  }

 private:
  static bool dynamic_key(const std::string& key) {
    return key == "metrics" || key == "trace";
  }

  void ws() {
    while (i_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[i_])) != 0) ++i_;
  }

  char peek() {
    ws();
    return i_ < s_.size() ? s_[i_] : '\0';
  }

  std::string string_token() {
    std::string v;
    ++i_;  // opening quote
    while (i_ < s_.size() && s_[i_] != '"') {
      if (s_[i_] == '\\' && i_ + 1 < s_.size()) ++i_;
      v += s_[i_++];
    }
    ++i_;  // closing quote
    return v;
  }

  void skip_value() {
    ws();
    int depth = 0;
    do {
      const char c = s_[i_];
      if (c == '"') {
        string_token();
        continue;
      }
      if (c == '{' || c == '[') ++depth;
      if (c == '}' || c == ']') --depth;
      ++i_;
    } while (i_ < s_.size() && depth > 0);
    // Scalar: consume until a structural delimiter.
    while (i_ < s_.size() && s_[i_] != ',' && s_[i_] != '}' && s_[i_] != ']') ++i_;
  }

  void value(const std::string& path) {
    const char c = peek();
    if (c == '{') {
      out_ += path + ":object\n";
      ++i_;
      if (peek() == '}') {
        ++i_;
        return;
      }
      while (true) {
        ws();
        const std::string key = string_token();
        ws();
        ++i_;  // ':'
        if (dynamic_key(key)) {
          out_ += path + "." + key + ":<dynamic>\n";
          skip_value();
        } else {
          value(path + "." + key);
        }
        if (peek() == ',') {
          ++i_;
          continue;
        }
        ++i_;  // '}'
        return;
      }
    }
    if (c == '[') {
      out_ += path + ":array\n";
      ++i_;
      if (peek() == ']') {
        ++i_;
        return;
      }
      value(path + "[]");  // shape of the first element stands for all
      while (peek() == ',') {
        ++i_;
        skip_value();
      }
      ++i_;  // ']'
      return;
    }
    if (c == '"') {
      string_token();
      out_ += path + ":string\n";
      return;
    }
    skip_value();
    out_ += path + ":number\n";
  }

  const std::string& s_;
  std::size_t i_ = 0;
  std::string out_;
};

Scenario schema_scenario() {
  Scenario s;
  s.topology = net::Topology::globe();
  s.replica_dcs = {s.topology.index_of("WA"), s.topology.index_of("PR"),
                   s.topology.index_of("NSW")};
  s.client_dcs = {0, 1};
  s.rps = 50;
  s.warmup = milliseconds(500);
  s.measure = seconds(2);
  s.cooldown = milliseconds(500);
  s.seed = 5;
  return s;
}

std::string golden_path() {
  return std::string(DOMINO_GOLDEN_DIR) + "/run_report_schema.golden";
}

TEST(ReportSchema, JsonKeysAndShapesMatchGolden) {
  // The richest report: observability + spans + prediction audit + windowed
  // telemetry with an SLO rule and a fault (so the timeline and slo blocks
  // appear with non-empty rule/steady arrays), Domino.
  Scenario full = schema_scenario();
  full.command_spans = true;
  full.prediction_audit = true;
  full.timeseries_interval = milliseconds(250);
  full.faults.crash_for(TimePoint::epoch() + milliseconds(800), NodeId{1},
                        milliseconds(300));
  full.client_request_timeout = milliseconds(300);
  full.slo.rules.push_back(obs::SloRule{"commit_p95", "client.commit_latency_ns",
                                        obs::SloRule::Kind::kLatencyCeiling, 95.0,
                                        /*threshold=*/1.5e9, /*burn_windows=*/2});
  full.slo.steady_metric = "client.committed";
  full.slo.steady_windows = 2;
  const RunReport rich =
      make_report(Protocol::kDomino, full, run_domino(full));

  // The leanest: observability off (no metrics/trace/audit blocks at all).
  Scenario min = schema_scenario();
  min.observability = false;
  const RunReport lean = make_report(Protocol::kDomino, min, run_domino(min));

  std::string actual;
  actual += "# RunReport::to_json schema (keys and shapes, not values)\n";
  actual += "## full: observability + command_spans + prediction_audit + timeline/slo\n";
  actual += SchemaWalker(rich.to_json()).schema();
  actual += "## minimal: observability off\n";
  actual += SchemaWalker(lean.to_json()).schema();

  if (std::getenv("DOMINO_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path(), std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
    out << actual;
    GTEST_SKIP() << "golden regenerated at " << golden_path();
  }

  std::ifstream in(golden_path(), std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << golden_path()
                         << " (run with DOMINO_UPDATE_GOLDEN=1 to create)";
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), actual)
      << "RunReport JSON schema changed. If intentional, regenerate with\n"
         "  DOMINO_UPDATE_GOLDEN=1 ./tests/test_harness "
         "--gtest_filter='ReportSchema.*'";
}

TEST(ReportSchema, SchemaIsValueIndependent) {
  // Different seed, same schema: the walker must not leak values.
  Scenario a = schema_scenario();
  a.prediction_audit = true;
  Scenario b = a;
  b.seed = 1234;
  b.rps = 80;
  const RunReport ra = make_report(Protocol::kDomino, a, run_domino(a));
  const RunReport rb = make_report(Protocol::kDomino, b, run_domino(b));
  EXPECT_NE(ra.to_json(), rb.to_json());  // values differ...
  EXPECT_EQ(SchemaWalker(ra.to_json()).schema(),
            SchemaWalker(rb.to_json()).schema());  // ...schema does not
}

}  // namespace
}  // namespace domino::harness
