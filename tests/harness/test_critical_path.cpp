// End-to-end tests of causal command tracing on real protocol runs: the
// exact-sum acceptance property (every committed command's critical-path
// phase attributions sum exactly, in virtual time, to its end-to-end
// latency), Chrome trace JSON validity, byte-identical same-seed exports,
// and fault instants in the export.
#include <cctype>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/run_report.h"
#include "harness/runner.h"

namespace domino::harness {
namespace {

Scenario traced_scenario() {
  Scenario s;
  s.topology = net::Topology::globe();
  // 3-DC Domino deployment (Figure 8c replica placement).
  s.replica_dcs = {s.topology.index_of("WA"), s.topology.index_of("PR"),
                   s.topology.index_of("NSW")};
  s.client_dcs = {0, 2, 4};
  s.rps = 50;
  s.warmup = milliseconds(500);
  s.measure = seconds(2);
  s.cooldown = seconds(1);
  s.seed = 11;
  s.command_spans = true;
  return s;
}

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON validator (structure only, no object
// building) — enough to prove the Chrome trace export is well-formed.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

void check_exact_sum(const RunResult& r) {
  ASSERT_FALSE(r.critical_paths.empty());
  for (const obs::CommandPath& p : r.critical_paths) {
    Duration sum = Duration::zero();
    TimePoint cursor = p.submitted_at;
    for (const obs::PathSegment& seg : p.segments) {
      // Chronological, contiguous: each segment picks up where the previous
      // one ended, so the sum below cannot double-count or leave gaps.
      EXPECT_EQ(seg.begin, cursor);
      EXPECT_LT(seg.begin, seg.end);
      cursor = seg.end;
      sum += seg.duration();
    }
    EXPECT_EQ(cursor, p.committed_at);
    // The acceptance property: phase attributions sum EXACTLY (integer
    // virtual-time nanoseconds) to the command's end-to-end latency.
    EXPECT_EQ(sum.nanos(), p.total().nanos());
  }
}

TEST(CriticalPathRun, DominoPhasesSumExactlyToLatency) {
  const RunResult r = run_domino(traced_scenario());
  ASSERT_NE(r.spans, nullptr);
  EXPECT_EQ(r.spans->dropped_spans(), 0u);
  EXPECT_EQ(r.spans->dropped_edges(), 0u);
  // Every client-observed commit has a critical path.
  EXPECT_EQ(r.critical_paths.size(), r.client_committed);
  check_exact_sum(r);
  // The phase aggregation landed in the registry.
  EXPECT_EQ(r.metrics->counter("critpath.commands").value(), r.client_committed);
}

TEST(CriticalPathRun, EveryProtocolSumsExactly) {
  for (const Protocol p : {Protocol::kMultiPaxos, Protocol::kMencius, Protocol::kEPaxos,
                           Protocol::kFastPaxos}) {
    SCOPED_TRACE(protocol_name(p));
    const RunResult r = run_protocol(p, traced_scenario());
    check_exact_sum(r);
    EXPECT_EQ(r.critical_paths.size(), r.client_committed);
  }
}

TEST(CriticalPathRun, DominoFastPathShowsQuorumWait) {
  // On the globe topology remote Domino clients use DFP; the analyzer must
  // attribute their latency to propose transit + quorum wait.
  const RunResult r = run_domino(traced_scenario());
  const std::string csv = obs::paths_to_csv(r.critical_paths, "Domino");
  EXPECT_NE(csv.find(",dfp_propose_transit,"), std::string::npos);
  EXPECT_NE(csv.find(",dfp_quorum_wait,"), std::string::npos);
}

TEST(CriticalPathRun, ChromeTraceValidatesAndIsDeterministic) {
  const Scenario s = traced_scenario();
  const RunReport a = make_report(Protocol::kDomino, s, run_domino(s));
  const RunReport b = make_report(Protocol::kDomino, s, run_domino(s));

  const std::string json_a = a.chrome_trace();
  const std::string json_b = b.chrome_trace();
  EXPECT_FALSE(json_a.empty());
  EXPECT_TRUE(JsonChecker(json_a).valid());
  // Byte-identical across two same-seed runs.
  EXPECT_EQ(json_a, json_b);
  EXPECT_EQ(a.command_csv(), b.command_csv());

  // Spot checks: lanes, span events, flow bindings.
  EXPECT_NE(json_a.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json_a.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json_a.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json_a.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json_a.find("DfpPropose"), std::string::npos);

  // The JSON report carries the span accounting fields.
  const std::string report = a.to_json();
  EXPECT_NE(report.find("\"spans_recorded\":"), std::string::npos);
  EXPECT_NE(report.find("\"trace_events_dropped\":"), std::string::npos);
  EXPECT_NE(report.find("\"critical_paths\":"), std::string::npos);
}

TEST(CriticalPathRun, FaultEventsAppearAsInstants) {
  // The DM-leader-crash scenario from the chaos suite, with spans on:
  // timed-out requests fail over, and the crash/recover pair shows up as
  // instant events in the Chrome trace.
  Scenario s = traced_scenario();
  s.trace_capacity = 1u << 20;  // keep the whole run: crashes must survive
  s.domino_mode = core::ClientConfig::Mode::kDmOnly;
  s.client_request_timeout = milliseconds(800);
  const std::size_t leader = closest_replica(s.topology, s.replica_dcs, s.client_dcs[0]);
  s.faults.crash_for(TimePoint::epoch() + s.warmup + milliseconds(800),
                     NodeId{static_cast<std::uint32_t>(leader)}, milliseconds(800));
  const RunReport report = make_report(Protocol::kDomino, s, run_domino(s));
  const std::string json = report.chrome_trace();
  EXPECT_TRUE(JsonChecker(json).valid());
  EXPECT_NE(json.find("\"cat\":\"fault\""), std::string::npos);
  EXPECT_NE(json.find("\"node_crash\""), std::string::npos);
  EXPECT_NE(json.find("\"node_recover\""), std::string::npos);
  // Traced runs survive chaos with the exact-sum property intact.
  check_exact_sum(run_domino(s));
}

TEST(CriticalPathRun, DisabledSpansLeaveWireUntouched) {
  // Spans change the envelope (context bytes); with command_spans off the
  // traffic totals must match a plain observability run exactly.
  Scenario s = traced_scenario();
  s.command_spans = false;
  const RunResult plain = run_domino(s);
  EXPECT_EQ(plain.spans, nullptr);
  EXPECT_TRUE(plain.critical_paths.empty());

  Scenario again = traced_scenario();
  again.command_spans = false;
  const RunResult repeat = run_domino(again);
  EXPECT_EQ(plain.bytes_sent, repeat.bytes_sent);
  EXPECT_EQ(plain.packets_sent, repeat.packets_sent);
}

TEST(CriticalPathRun, WritesSampleCsvForTooling) {
  // scripts/check.sh --trace smoke-feeds this file to trace_summary.py.
  const RunResult r = run_domino(traced_scenario());
  const std::string csv = obs::paths_to_csv(r.critical_paths, "Domino");
  std::ofstream out("critical_path_sample.csv", std::ios::binary);
  ASSERT_TRUE(out.good());
  out << csv;
  out.close();
  EXPECT_GT(csv.size(), 100u);
}

}  // namespace
}  // namespace domino::harness
