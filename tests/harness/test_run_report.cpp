// Integration tests of the observability layer: a real Domino run must
// produce a consistent metrics registry, per-link delivery histograms and a
// deterministic trace, all exposed through the RunReport.
#include "harness/run_report.h"

#include <gtest/gtest.h>

#include "obs/export.h"

namespace domino::harness {
namespace {

Scenario small_scenario() {
  Scenario s;
  s.topology = net::Topology::globe();
  s.replica_dcs = {s.topology.index_of("WA"), s.topology.index_of("PR"),
                   s.topology.index_of("NSW")};
  s.client_dcs = {0, 1, 2};
  s.rps = 100;
  s.warmup = seconds(1);
  s.measure = seconds(3);
  s.cooldown = seconds(1);
  s.seed = 11;
  return s;
}

TEST(RunReport, DominoMetricsMatchReplicaCounters) {
  const RunResult r = run_domino(small_scenario());
  ASSERT_NE(r.metrics, nullptr);

  // The registry's Domino counters are incremented at the same sites as the
  // replica-local counters the RunResult sums, so they must agree exactly.
  const auto* fast = r.metrics->find_counter("domino.dfp.fast_commits");
  const auto* slow = r.metrics->find_counter("domino.dfp.slow_commits");
  ASSERT_NE(fast, nullptr);
  ASSERT_NE(slow, nullptr);
  EXPECT_EQ(fast->value(), r.fast_path);
  EXPECT_EQ(slow->value(), r.slow_path);
  EXPECT_GT(fast->value(), 0u);

  const auto* dfp_chosen = r.metrics->find_counter("domino.client.dfp_chosen");
  ASSERT_NE(dfp_chosen, nullptr);
  EXPECT_EQ(dfp_chosen->value(), r.dfp_chosen);

  // Client-side commit accounting agrees with the collector's view plus the
  // commits outside the measurement window.
  const auto* committed = r.metrics->find_counter("client.committed");
  ASSERT_NE(committed, nullptr);
  EXPECT_GE(committed->value(), r.committed);
}

TEST(RunReport, PerLinkDeliveryHistogramsPresent) {
  const RunResult r = run_domino(small_scenario());
  ASSERT_NE(r.metrics, nullptr);
  // Replicas sit in WA, PR and NSW; the WA->PR link must have carried
  // messages with positive WAN delivery delays.
  const auto* delay = r.metrics->find_histogram("net.link.WA->PR.delay_ns");
  const auto* msgs = r.metrics->find_counter("net.link.WA->PR.messages");
  const auto* bytes = r.metrics->find_counter("net.link.WA->PR.bytes");
  ASSERT_NE(delay, nullptr);
  ASSERT_NE(msgs, nullptr);
  ASSERT_NE(bytes, nullptr);
  EXPECT_EQ(delay->count(), msgs->value());
  EXPECT_GT(msgs->value(), 0u);
  EXPECT_GT(bytes->value(), msgs->value());  // every message has a payload
  EXPECT_GT(delay->min(), 0);                // WAN link: delay is never zero
}

TEST(RunReport, TransportAndSimMetricsPopulated) {
  const RunResult r = run_domino(small_scenario());
  ASSERT_NE(r.metrics, nullptr);
  const auto* sent = r.metrics->find_counter("rpc.messages_sent");
  const auto* received = r.metrics->find_counter("rpc.messages_received");
  const auto* events = r.metrics->find_counter("sim.events_executed");
  const auto* probes = r.metrics->find_counter("measure.probes_sent");
  ASSERT_NE(sent, nullptr);
  ASSERT_NE(received, nullptr);
  ASSERT_NE(events, nullptr);
  ASSERT_NE(probes, nullptr);
  EXPECT_GT(sent->value(), 0u);
  EXPECT_GE(sent->value(), received->value());  // drops + in-flight at stop
  EXPECT_GT(events->value(), sent->value());    // timers on top of messages
  EXPECT_GT(probes->value(), 0u);
}

TEST(RunReport, SameSeedRunsProduceIdenticalTraceAndMetrics) {
  const Scenario s = small_scenario();
  const RunResult a = run_domino(s);
  const RunResult b = run_domino(s);
  ASSERT_NE(a.trace, nullptr);
  ASSERT_NE(b.trace, nullptr);
  EXPECT_FALSE(a.trace->empty());
  EXPECT_EQ(a.trace->total_recorded(), b.trace->total_recorded());
  EXPECT_EQ(obs::trace_to_text(*a.trace), obs::trace_to_text(*b.trace));
  EXPECT_EQ(obs::metrics_to_json(*a.metrics), obs::metrics_to_json(*b.metrics));

  const RunReport ra = make_report(Protocol::kDomino, s, a);
  const RunReport rb = make_report(Protocol::kDomino, s, b);
  EXPECT_EQ(ra.to_json(/*include_trace=*/true), rb.to_json(/*include_trace=*/true));
}

TEST(RunReport, DisabledObservabilityYieldsNullRegistries) {
  Scenario s = small_scenario();
  s.observability = false;
  const RunResult r = run_domino(s);
  EXPECT_EQ(r.metrics, nullptr);
  EXPECT_EQ(r.trace, nullptr);
  EXPECT_GT(r.committed, 0u);  // the run itself still works
  // And the report degrades gracefully.
  const RunReport report = make_report(Protocol::kDomino, s, r);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"protocol\":\"Domino\""), std::string::npos);
  EXPECT_EQ(json.find("\"metrics\""), std::string::npos);
}

TEST(RunReport, JsonCarriesLatencySummaryAndCounters) {
  const Scenario s = small_scenario();
  const RunResult r = run_domino(s);
  const RunReport report = make_report(Protocol::kDomino, s, r);
  EXPECT_EQ(report.committed, r.committed);
  EXPECT_EQ(report.latency.committed, r.committed);  // collector is the source
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"commit_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"domino.dfp.fast_commits\""), std::string::npos);
  EXPECT_NE(json.find("net.link.WA->PR.delay_ns"), std::string::npos);
  EXPECT_NE(json.find("\"trace_events_recorded\""), std::string::npos);
}

TEST(RunReport, BaselineProtocolCountersRegistered) {
  const Scenario s = small_scenario();
  const RunResult paxos = run_multipaxos(s);
  ASSERT_NE(paxos.metrics, nullptr);
  const auto* commits = paxos.metrics->find_counter("paxos.commits");
  ASSERT_NE(commits, nullptr);
  EXPECT_GT(commits->value(), 0u);

  const RunResult epaxos = run_epaxos(s);
  ASSERT_NE(epaxos.metrics, nullptr);
  const auto* fast = epaxos.metrics->find_counter("epaxos.fast_commits");
  ASSERT_NE(fast, nullptr);
  EXPECT_EQ(fast->value(), epaxos.fast_path);
}

}  // namespace
}  // namespace domino::harness
