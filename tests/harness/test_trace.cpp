#include "harness/trace.h"

#include <gtest/gtest.h>

namespace domino::harness {
namespace {

LinkTraceConfig quiet_link() {
  LinkTraceConfig c;
  c.rtt = milliseconds(67);
  c.spike_prob = 0.0;
  c.duration = seconds(30);
  return c;
}

TEST(TraceGenerator, ProducesExpectedSampleCount) {
  LinkTraceConfig c = quiet_link();
  c.probe_interval = milliseconds(10);
  c.duration = seconds(1);
  EXPECT_EQ(generate_trace(c).size(), 100u);
}

TEST(TraceGenerator, RttNearNominal) {
  const auto trace = generate_trace(quiet_link());
  for (const auto& s : trace) {
    EXPECT_GE(s.rtt, milliseconds(67));
    EXPECT_LT(s.rtt, milliseconds(80));  // jitter is small vs the floor
  }
}

TEST(TraceGenerator, SymmetricPathHalfRttIsGoodOwd) {
  const auto trace = generate_trace(quiet_link());
  for (const auto& s : trace) {
    // forward share 0.5, no skew: measured OWD ~ rtt/2.
    EXPECT_NEAR(s.owd_measured.millis(), s.rtt.millis() / 2, 3.0);
  }
}

TEST(TraceGenerator, AsymmetryShiftsOwd) {
  LinkTraceConfig c = quiet_link();
  c.forward_share = 0.7;
  const auto trace = generate_trace(c);
  double avg = 0;
  for (const auto& s : trace) avg += s.owd_measured.millis();
  avg /= static_cast<double>(trace.size());
  EXPECT_NEAR(avg, 67.0 * 0.7, 2.0);
}

TEST(TraceGenerator, ClockOffsetFoldsIntoMeasuredOwd) {
  LinkTraceConfig c = quiet_link();
  c.remote_clock_offset = milliseconds(500);
  const auto trace = generate_trace(c);
  for (const auto& s : trace) {
    EXPECT_GT(s.owd_measured, milliseconds(500));
  }
}

TEST(TraceGenerator, DeterministicPerSeed) {
  const auto a = generate_trace(quiet_link());
  const auto b = generate_trace(quiet_link());
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a[17].rtt, b[17].rtt);
}

TEST(Prediction, HighPercentilePredictsWell) {
  // Matches Figure 3's top-right region: p95 with a 1 s window on a stable
  // link predicts correctly ~95% of the time.
  const auto trace = generate_trace(quiet_link());
  const auto outcome =
      evaluate_predictions(trace, OwdEstimator::kReplicaTimestamp, seconds(1), 95.0);
  EXPECT_GT(outcome.correct_rate, 0.88);
  EXPECT_GT(outcome.evaluated, 1000u);
}

TEST(Prediction, LowPercentilePredictsPoorly) {
  // Figure 3's left side: low percentiles under-predict most arrivals.
  const auto trace = generate_trace(quiet_link());
  const auto p5 =
      evaluate_predictions(trace, OwdEstimator::kReplicaTimestamp, seconds(1), 5.0);
  const auto p95 =
      evaluate_predictions(trace, OwdEstimator::kReplicaTimestamp, seconds(1), 95.0);
  EXPECT_LT(p5.correct_rate + 0.3, p95.correct_rate);
}

TEST(Prediction, HalfRttFailsUnderAsymmetry) {
  // The Table 2 vs Table 3 effect: with disjoint forward/reverse paths the
  // half-RTT estimator mispredicts by roughly the asymmetry, while the
  // replica-timestamp estimator stays accurate.
  LinkTraceConfig c = quiet_link();
  c.forward_share = 0.75;  // forward path carries 75% of the RTT
  const auto trace = generate_trace(c);
  const auto half =
      evaluate_predictions(trace, OwdEstimator::kHalfRtt, seconds(1), 95.0);
  const auto owd =
      evaluate_predictions(trace, OwdEstimator::kReplicaTimestamp, seconds(1), 95.0);
  EXPECT_LT(half.correct_rate, 0.2);
  EXPECT_GT(owd.correct_rate, 0.88);
  EXPECT_GT(half.p99_misprediction_ms, 10.0);  // ~67 * 0.25 ms systematic error
  EXPECT_LT(owd.p99_misprediction_ms, 8.0);
}

TEST(Prediction, HalfRttFailsUnderClockSkew) {
  LinkTraceConfig c = quiet_link();
  c.remote_clock_offset = milliseconds(30);
  const auto trace = generate_trace(c);
  const auto half =
      evaluate_predictions(trace, OwdEstimator::kHalfRtt, seconds(1), 95.0);
  const auto owd =
      evaluate_predictions(trace, OwdEstimator::kReplicaTimestamp, seconds(1), 95.0);
  // Arrivals (in replica clock) are ~30 ms later than half-RTT predicts.
  EXPECT_LT(half.correct_rate, 0.1);
  EXPECT_GT(owd.correct_rate, 0.88);
}

TEST(Prediction, SpikesCauseBoundedMispredictions) {
  LinkTraceConfig c = quiet_link();
  c.spike_prob = 0.01;
  c.spike_mean = milliseconds(10);
  const auto trace = generate_trace(c);
  const auto outcome =
      evaluate_predictions(trace, OwdEstimator::kReplicaTimestamp, seconds(1), 95.0);
  EXPECT_GT(outcome.correct_rate, 0.85);
  EXPECT_GT(outcome.p99_misprediction_ms, 0.0);
}

}  // namespace
}  // namespace domino::harness
