// Replica-failure tests (paper Section 5.8): Domino tolerates f crash
// failures out of 2f + 1 replicas. Clients stop using DFP once a replica is
// unreachable (no supermajority); a successor revokes the dead replica's DM
// lane so execution keeps advancing; the DFP coordinator recovers the
// committed-no-op frontier past the dead replica's frozen clock.
#include <gtest/gtest.h>

#include "core/client.h"
#include "core/replica.h"
#include "support/fixtures.h"

namespace domino::core {
namespace {

using test::four_dc;
using test::make_command;
using test::replica_ids;

struct FailureCluster : ::testing::Test {
  sim::Simulator simulator;
  net::Network network{simulator, four_dc(), 1};
  std::vector<NodeId> rids = replica_ids(3);
  std::vector<std::unique_ptr<Replica>> replicas;
  std::unique_ptr<Client> client;

  void SetUp() override {
    // Coordinator at rank 0 (DC A); client in D.
    for (std::size_t i = 0; i < 3; ++i) {
      replicas.push_back(
          std::make_unique<Replica>(rids[i], i, network, rids, rids[0]));
      replicas.back()->attach();
      replicas.back()->start();
    }
    client = std::make_unique<Client>(NodeId{1000}, 3, network, rids);
    client->attach();
    client->start();
  }

  void warmup() { simulator.run_until(TimePoint::epoch() + seconds(1)); }
};

TEST_F(FailureCluster, ClientSwitchesToDmAfterCrash) {
  warmup();
  network.crash(rids[2]);
  simulator.run_until(TimePoint::epoch() + seconds(2));  // past failure timeout
  const auto est = client->estimates();
  // DFP needs a supermajority (all 3); with one dead it is unreachable.
  EXPECT_EQ(est.dfp, Duration::max());
  EXPECT_NE(est.dm, Duration::max());
  client->submit(make_command(client->id(), 0));
  simulator.run_until(TimePoint::epoch() + seconds(4));
  EXPECT_EQ(client->committed_count(), 1u);
  EXPECT_EQ(client->dm_chosen(), 1u);
}

TEST_F(FailureCluster, CommitsContinueAfterNonCoordinatorCrash) {
  warmup();
  network.crash(rids[2]);
  simulator.run_until(TimePoint::epoch() + seconds(2));
  for (std::uint64_t s = 0; s < 10; ++s) {
    client->submit(make_command(client->id(), s, "k" + std::to_string(s), "v"));
  }
  simulator.run_until(TimePoint::epoch() + seconds(5));
  EXPECT_EQ(client->committed_count(), 10u);
}

TEST_F(FailureCluster, ExecutionContinuesAfterCrashViaLaneRevocation) {
  warmup();
  network.crash(rids[2]);
  simulator.run_until(TimePoint::epoch() + seconds(2));
  std::uint64_t executed_on_0 = 0;
  replicas[0]->set_execute_hook(
      [&](const RequestId&, TimePoint) { ++executed_on_0; });
  for (std::uint64_t s = 0; s < 10; ++s) {
    client->submit(make_command(client->id(), s, "k" + std::to_string(s), "v"));
  }
  simulator.run_until(TimePoint::epoch() + seconds(6));
  // Without the dead replica's DM-lane revocation and the DFP range
  // recovery, the global frontier would freeze at the crash time and
  // nothing would execute.
  EXPECT_EQ(executed_on_0, 10u);
  // Both survivors converge.
  EXPECT_EQ(replicas[0]->store().items(), replicas[1]->store().items());
  EXPECT_EQ(replicas[0]->store().size(), 10u);
}

TEST_F(FailureCluster, InFlightDfpResolvedByRecoveryAfterCrash) {
  warmup();
  // Submit via DFP, then crash a replica while proposals are in flight.
  ClientConfig cc;
  cc.mode = ClientConfig::Mode::kDfpOnly;
  cc.additional_delay = milliseconds(1);
  auto dfp_client = std::make_unique<Client>(NodeId{1001}, 3, network, rids, cc);
  dfp_client->attach();
  dfp_client->start();
  simulator.run_until(TimePoint::epoch() + seconds(2));
  dfp_client->submit(make_command(dfp_client->id(), 0, "x", "y"));
  simulator.schedule_after(milliseconds(5), [&] { network.crash(rids[2]); });
  simulator.run_until(TimePoint::epoch() + seconds(6));
  // The proposal cannot reach a supermajority; the coordinator's recovery
  // timer resolves it (commit or DM re-route) and the client learns.
  EXPECT_EQ(dfp_client->committed_count(), 1u);
  EXPECT_EQ(replicas[0]->store().get("x"), "y");
  EXPECT_EQ(replicas[1]->store().get("x"), "y");
}

TEST_F(FailureCluster, DeadDmLeaderEntriesSurviveIfReplicated) {
  warmup();
  // Drive a DM request through replica 2 (the future crash victim) and let
  // the accept reach the survivors, then crash the leader before anyone
  // hears its commit.
  ClientConfig cc;
  cc.mode = ClientConfig::Mode::kDmOnly;
  auto dm_client = std::make_unique<Client>(NodeId{1001}, 2, network, rids, cc);
  dm_client->attach();
  dm_client->start();
  simulator.run_until(TimePoint::epoch() + seconds(2));
  // Send directly to replica 2 as DM leader.
  sm::Command cmd = make_command(dm_client->id(), 0, "persist", "me");
  dm_client->submit(cmd);
  // Crash after accepts propagate (C->A is 40 ms RTT; accepts arrive ~20 ms)
  // but before commits are broadcast everywhere.
  simulator.schedule_after(milliseconds(21), [&] { network.crash(rids[2]); });
  simulator.run_until(TimePoint::epoch() + seconds(8));
  // The lane revocation must have committed the accepted entry at the
  // survivors (it was accepted by at least one live replica).
  EXPECT_EQ(replicas[0]->store().get("persist"), "me");
  EXPECT_EQ(replicas[1]->store().get("persist"), "me");
  EXPECT_EQ(replicas[0]->store().items(), replicas[1]->store().items());
}

TEST_F(FailureCluster, LaneRevocationUnderPartitionThenHeal) {
  warmup();
  // Cut DC C (replica 2) off from every other datacenter for 2 s, via the
  // fault scheduler: [1.5 s, 3.5 s).
  const TimePoint start = TimePoint::epoch() + milliseconds(1500);
  net::FaultSchedule s;
  for (std::size_t dc : {0u, 1u, 3u}) {
    s.partition_both_for(start, 2, dc, seconds(2));
  }
  network.install_faults(s);

  // 600 ms into the partition the failure detector (500 ms) has fired.
  simulator.run_until(start + milliseconds(600));
  EXPECT_TRUE(client->view().is_stale(rids[2]));
  for (std::uint64_t q = 0; q < 10; ++q) {
    client->submit(make_command(client->id(), q, "k" + std::to_string(q), "v"));
  }
  simulator.run_until(TimePoint::epoch() + seconds(3));
  // The partitioned replica's DM lane is revoked, so the survivors' global
  // frontier keeps advancing and everything commits.
  EXPECT_EQ(client->committed_count(), 10u);
  EXPECT_EQ(replicas[0]->store().items(), replicas[1]->store().items());
  EXPECT_GT(network.packets_dropped(net::DropReason::kPartition), 0u);

  // After the heal the probe feed refreshes: the replica stops looking
  // stale and DFP becomes estimable again.
  simulator.run_until(TimePoint::epoch() + seconds(5));
  EXPECT_FALSE(client->view().is_stale(rids[2]));
  EXPECT_NE(client->estimates().dfp, Duration::max());
  client->submit(make_command(client->id(), 100, "after", "heal"));
  simulator.run_until(TimePoint::epoch() + seconds(7));
  EXPECT_EQ(client->committed_count(), 11u);
}

TEST_F(FailureCluster, DfpPartitionTimeoutFailsOverToDm) {
  ClientConfig cc;
  cc.mode = ClientConfig::Mode::kDfpOnly;
  cc.additional_delay = milliseconds(1);
  auto dfp_client = std::make_unique<Client>(NodeId{1001}, 3, network, rids, cc);
  dfp_client->attach();
  dfp_client->start();
  dfp_client->set_request_timeout(milliseconds(200), /*max_retries=*/2);
  warmup();
  simulator.run_until(TimePoint::epoch() + seconds(2));

  // Submit a DFP request, then cut the client's DC off from the
  // coordinator's DC while the proposals are in flight: the fast path
  // cannot reach the client (accept notices from A are lost) and neither
  // can the coordinator's slow-path reply.
  dfp_client->submit(make_command(dfp_client->id(), 0, "fo", "dm"));
  simulator.schedule_after(milliseconds(1), [&] {
    network.fault().partition(3, 0);
    network.fault().partition(0, 3);
  });
  simulator.run_until(TimePoint::epoch() + seconds(4));

  // The per-request timeout re-routed the request through DM on a live
  // leader (replica A's feed went stale behind the partition, so it was
  // skipped), and the DM reply reached the client directly.
  EXPECT_EQ(dfp_client->committed_count(), 1u);
  EXPECT_EQ(dfp_client->dfp_failovers(), 1u);
  EXPECT_GE(dfp_client->retry_count(), 1u);
  EXPECT_EQ(replicas[1]->store().get("fo"), "dm");
}

TEST_F(FailureCluster, DmLeaderCrashFailsOverViaTimeout) {
  ClientConfig cc;
  cc.mode = ClientConfig::Mode::kDmOnly;
  auto dm_client = std::make_unique<Client>(NodeId{1001}, 3, network, rids, cc);
  dm_client->attach();
  dm_client->start();
  dm_client->set_request_timeout(milliseconds(150), /*max_retries=*/3);
  warmup();
  simulator.run_until(TimePoint::epoch() + seconds(2));

  // Crash the leader the client is about to use, then submit immediately —
  // before any staleness can be observed, so the requests really do chase
  // the dead leader first.
  const NodeId leader = dm_client->estimates().dm_leader;
  ASSERT_TRUE(leader.valid());
  network.crash(leader);
  for (std::uint64_t q = 0; q < 5; ++q) {
    dm_client->submit(make_command(dm_client->id(), q, "c" + std::to_string(q), "v"));
  }
  simulator.run_until(TimePoint::epoch() + seconds(6));

  // Each request timed out once, and the retry picked a non-stale leader
  // (the dead one's probe feed went quiet within a few probe intervals).
  EXPECT_EQ(dm_client->committed_count(), 5u);
  EXPECT_GE(dm_client->retry_count(), 5u);
  EXPECT_EQ(dm_client->abandoned_count(), 0u);
}

TEST_F(FailureCluster, SustainedLoadAcrossCrash) {
  warmup();
  sm::WorkloadConfig wc;
  wc.num_keys = 30;
  sm::WorkloadGenerator gen(wc, 5);
  client->start_load(gen, 100.0);
  simulator.schedule_after(seconds(2), [&] { network.crash(rids[1]); });
  simulator.run_until(TimePoint::epoch() + seconds(6));
  client->stop_load();
  simulator.run_until(TimePoint::epoch() + seconds(12));
  // Some requests in flight exactly at the crash may be lost with their
  // packets; everything submitted after the failure detector fires commits.
  EXPECT_GT(client->committed_count(), client->submitted_count() * 9 / 10);
  // Survivors converge.
  EXPECT_EQ(replicas[0]->store().items(), replicas[2]->store().items());
}

}  // namespace
}  // namespace domino::core
