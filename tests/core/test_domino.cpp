#include <gtest/gtest.h>

#include "core/client.h"
#include "core/replica.h"
#include "support/fixtures.h"

namespace domino::core {
namespace {

using test::make_command;
using test::replica_ids;

/// Replicas in A, B, C; a client DC "E" equidistant (30 ms) from all three
/// (DFP advantageous there: 30 < min(30+20) = 50), plus "D" close to C
/// (DM advantageous there).
net::Topology five_dc() {
  return net::Topology{{"A", "B", "C", "D", "E"},
                       {{0, 20, 40, 60, 30},
                        {20, 0, 30, 50, 30},
                        {40, 30, 0, 10, 30},
                        {60, 50, 10, 0, 40},
                        {30, 30, 30, 40, 0}}};
}

struct DominoCluster : ::testing::Test {
  sim::Simulator simulator;
  net::Network network{simulator, five_dc(), 1};
  std::vector<NodeId> rids = replica_ids(3);
  std::vector<std::unique_ptr<Replica>> replicas;

  void SetUp() override {
    for (std::size_t i = 0; i < 3; ++i) {
      replicas.push_back(
          std::make_unique<Replica>(rids[i], i, network, rids, rids[0]));
      replicas.back()->attach();
      replicas.back()->start();
    }
  }

  std::unique_ptr<Client> make_client(NodeId id, std::size_t dc,
                                      ClientConfig config = {}) {
    auto c = std::make_unique<Client>(id, dc, network, rids, config);
    c->attach();
    c->start();
    return c;
  }

  /// Let probers warm up so estimates exist.
  void warmup(Duration d = seconds(1)) { simulator.run_until(TimePoint::epoch() + d); }
};

TEST_F(DominoCluster, ReplicationLatencyEstimates) {
  warmup();
  // L_A = majority RTT from A = RTT(A,B) = 20 ms; L_C = RTT(C,D)? replicas
  // are A, B, C: L_C = min peer RTT = 30 ms (C-B).
  EXPECT_NEAR(replicas[0]->replication_latency_estimate().millis(), 20.0, 1.0);
  EXPECT_NEAR(replicas[2]->replication_latency_estimate().millis(), 30.0, 1.0);
}

TEST_F(DominoCluster, ClientEstimatesBothSubsystems) {
  auto client = make_client(NodeId{1000}, 4);  // E: 30 ms to every replica
  warmup();
  const auto est = client->estimates();
  EXPECT_NEAR(est.dfp.millis(), 30.0, 1.5);
  EXPECT_NEAR(est.dm.millis(), 50.0, 1.5);  // 30 + L=20 via A or B
}

TEST_F(DominoCluster, EquidistantClientChoosesDfpAndCommitsFast) {
  ClientConfig cc;
  cc.additional_delay = milliseconds(1);  // the paper's misprediction slack
  auto client = make_client(NodeId{1000}, 4, cc);
  warmup();
  TimePoint sent, committed;
  client->set_commit_hook([&](const RequestId&, TimePoint s, TimePoint c) {
    sent = s;
    committed = c;
  });
  client->submit(make_command(client->id(), 0));
  simulator.run_until(TimePoint::epoch() + seconds(3));
  EXPECT_EQ(client->committed_count(), 1u);
  EXPECT_EQ(client->dfp_chosen(), 1u);
  EXPECT_EQ(client->dfp_fast_learns(), 1u);
  // One round trip: ~30 ms (plus jitter-free constant links).
  EXPECT_NEAR((committed - sent).millis(), 30.0, 2.0);
}

TEST_F(DominoCluster, NearReplicaClientChoosesDm) {
  auto client = make_client(NodeId{1000}, 3);  // D: 10 ms to C
  warmup();
  TimePoint sent, committed;
  client->set_commit_hook([&](const RequestId&, TimePoint s, TimePoint c) {
    sent = s;
    committed = c;
  });
  client->submit(make_command(client->id(), 0));
  simulator.run_until(TimePoint::epoch() + seconds(3));
  EXPECT_EQ(client->dm_chosen(), 1u);
  // DM via C: 10 + L_C (30) = 40 ms.
  EXPECT_NEAR((committed - sent).millis(), 40.0, 2.0);
}

TEST_F(DominoCluster, DfpRequestsExecuteEverywhere) {
  ClientConfig cc;
  cc.additional_delay = milliseconds(1);
  auto client = make_client(NodeId{1000}, 4, cc);
  warmup();
  std::vector<TimePoint> exec_times(3);
  for (std::size_t i = 0; i < 3; ++i) {
    replicas[i]->set_execute_hook(
        [&exec_times, i](const RequestId&, TimePoint at) { exec_times[i] = at; });
  }
  client->submit(make_command(client->id(), 0, "kx", "vx"));
  simulator.run_until(TimePoint::epoch() + seconds(3));
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GT(exec_times[i], TimePoint::epoch()) << "replica " << i;
    EXPECT_EQ(replicas[i]->store().get("kx"), "vx") << "replica " << i;
  }
}

TEST_F(DominoCluster, DmOnlyModeCommitsViaDm) {
  ClientConfig cc;
  cc.mode = ClientConfig::Mode::kDmOnly;
  auto client = make_client(NodeId{1000}, 4, cc);
  warmup();
  for (std::uint64_t s = 0; s < 5; ++s) client->submit(make_command(client->id(), s));
  simulator.run_until(TimePoint::epoch() + seconds(3));
  EXPECT_EQ(client->committed_count(), 5u);
  EXPECT_EQ(client->dfp_chosen(), 0u);
  const std::uint64_t dm_total =
      replicas[0]->dm_commits() + replicas[1]->dm_commits() + replicas[2]->dm_commits();
  EXPECT_EQ(dm_total, 5u);
}

TEST_F(DominoCluster, DfpOnlyModeUsesFastPath) {
  ClientConfig cc;
  cc.mode = ClientConfig::Mode::kDfpOnly;
  cc.additional_delay = milliseconds(1);
  auto client = make_client(NodeId{1000}, 3, cc);  // D would prefer DM
  warmup();
  for (std::uint64_t s = 0; s < 5; ++s) client->submit(make_command(client->id(), s));
  simulator.run_until(TimePoint::epoch() + seconds(3));
  EXPECT_EQ(client->committed_count(), 5u);
  EXPECT_EQ(client->dfp_fast_learns(), 5u);
  EXPECT_EQ(replicas[0]->dfp_fast_commits(), 5u);
}

TEST_F(DominoCluster, LateTimestampTriggersSlowPathButStillCommits) {
  // A client library bug / huge misprediction is emulated by a negative
  // additional delay: the timestamp lands in the past at every replica, so
  // all replicas reject and the coordinator resolves no-op + re-routes the
  // command through DM.
  ClientConfig cc;
  cc.mode = ClientConfig::Mode::kDfpOnly;
  cc.additional_delay = milliseconds(-200);
  auto client = make_client(NodeId{1000}, 4, cc);
  warmup();
  TimePoint sent, committed;
  client->set_commit_hook([&](const RequestId&, TimePoint s, TimePoint c) {
    sent = s;
    committed = c;
  });
  client->submit(make_command(client->id(), 0, "slow", "val"));
  simulator.run_until(TimePoint::epoch() + seconds(5));
  EXPECT_EQ(client->committed_count(), 1u);
  EXPECT_EQ(client->dfp_fast_learns(), 0u);
  EXPECT_GT((committed - sent).millis(), 30.0);  // strictly slower than fast path
  // The command still executed exactly once everywhere.
  for (const auto& r : replicas) {
    EXPECT_EQ(r->store().get("slow"), "val");
    EXPECT_EQ(r->store().applied_count(), 1u);
  }
}

TEST_F(DominoCluster, MixedDfpAndDmExecuteInSameOrderEverywhere) {
  test::ExecTrace traces[3];
  for (std::size_t i = 0; i < 3; ++i) replicas[i]->set_execute_hook(std::ref(traces[i]));
  auto dfp_client = make_client(NodeId{1000}, 4);
  auto dm_client = make_client(NodeId{1001}, 3);
  warmup();
  for (std::uint64_t s = 0; s < 20; ++s) {
    simulator.schedule_after(milliseconds(static_cast<std::int64_t>(s) * 5), [&, s] {
      dfp_client->submit(make_command(dfp_client->id(), s, "h"));
      dm_client->submit(make_command(dm_client->id(), s, "h"));
    });
  }
  simulator.run_until(TimePoint::epoch() + seconds(5));
  EXPECT_EQ(dfp_client->committed_count(), 20u);
  EXPECT_EQ(dm_client->committed_count(), 20u);
  ASSERT_EQ(traces[0].order.size(), 40u);
  EXPECT_EQ(traces[0].order, traces[1].order);
  EXPECT_EQ(traces[0].order, traces[2].order);
  const auto& ref = replicas[0]->store().items();
  for (const auto& r : replicas) EXPECT_EQ(r->store().items(), ref);
}

TEST_F(DominoCluster, ExecutionLatencyBoundedByHeartbeat) {
  // A fast-committed DFP request executes once the committed frontier
  // passes its timestamp: within a couple of heartbeat intervals after the
  // timestamp, not hundreds of ms later.
  ClientConfig cc;
  cc.additional_delay = milliseconds(1);
  auto client = make_client(NodeId{1000}, 4, cc);
  warmup();
  TimePoint exec_at;
  replicas[0]->set_execute_hook([&](const RequestId&, TimePoint at) { exec_at = at; });
  TimePoint sent;
  client->set_send_hook([&](const RequestId&, TimePoint s) { sent = s; });
  client->submit(make_command(client->id(), 0));
  simulator.run_until(TimePoint::epoch() + seconds(3));
  ASSERT_GT(exec_at, TimePoint::epoch());
  // Send -> arrival (~15 ms) -> frontier passes (heartbeats + watermark
  // exchange, ~2 x 10 ms + propagation ~20 ms).
  EXPECT_LT((exec_at - sent).millis(), 100.0);
}

TEST_F(DominoCluster, ClockSkewDoesNotBreakFastPath) {
  // Recreate replicas with +/- 3 ms clock offsets; OWD-based predictions
  // absorb the skew (Section 5.4).
  sim::Simulator sim2;
  net::Network net2{sim2, five_dc(), 2};
  std::vector<std::unique_ptr<Replica>> reps;
  const Duration offsets[3] = {milliseconds(3), milliseconds(-3), milliseconds(2)};
  for (std::size_t i = 0; i < 3; ++i) {
    reps.push_back(std::make_unique<Replica>(rids[i], i, net2, rids, rids[0],
                                             ReplicaConfig{},
                                             sim::LocalClock{offsets[i], 0.0}));
    reps.back()->attach();
    reps.back()->start();
  }
  ClientConfig cc;
  cc.mode = ClientConfig::Mode::kDfpOnly;
  cc.additional_delay = milliseconds(1);
  auto client = std::make_unique<Client>(NodeId{1000}, 4, net2, rids, cc,
                                         sim::LocalClock{milliseconds(-2), 0.0});
  client->attach();
  client->start();
  sim2.run_until(TimePoint::epoch() + seconds(1));
  for (std::uint64_t s = 0; s < 10; ++s) client->submit(make_command(client->id(), s));
  sim2.run_until(TimePoint::epoch() + seconds(4));
  EXPECT_EQ(client->committed_count(), 10u);
  EXPECT_EQ(client->dfp_fast_learns(), 10u);
}

TEST_F(DominoCluster, SustainedMixedLoadConverges) {
  auto c0 = make_client(NodeId{1000}, 4);
  auto c1 = make_client(NodeId{1001}, 3);
  auto c2 = make_client(NodeId{1002}, 0);
  warmup();
  sm::WorkloadConfig wc;
  wc.num_keys = 40;
  sm::WorkloadGenerator g0(wc, 1), g1(wc, 2), g2(wc, 3);
  c0->start_load(g0, 200.0);
  c1->start_load(g1, 200.0);
  c2->start_load(g2, 200.0);
  simulator.run_until(TimePoint::epoch() + seconds(4));
  c0->stop_load();
  c1->stop_load();
  c2->stop_load();
  simulator.run_until(TimePoint::epoch() + seconds(7));
  for (const auto* c : {c0.get(), c1.get(), c2.get()}) {
    EXPECT_EQ(c->committed_count(), c->submitted_count());
  }
  const auto& ref = replicas[0]->store().items();
  for (const auto& r : replicas) EXPECT_EQ(r->store().items(), ref);
  // All three replicas executed every command exactly once.
  EXPECT_EQ(replicas[0]->store().applied_count(), replicas[1]->store().applied_count());
  EXPECT_EQ(replicas[0]->store().applied_count(), replicas[2]->store().applied_count());
}

}  // namespace
}  // namespace domino::core
