// Tests for the paper's optional/extension features implemented on top of
// the base protocol:
//   - pre-sharded timestamps (Section 5.3.3),
//   - the adaptive feedback controller (Section 5.4's future work),
//   - proxy-based measurement for Domino clients (Section 5.6).
#include <gtest/gtest.h>

#include "core/client.h"
#include "core/replica.h"
#include "measure/proxy.h"
#include "support/fixtures.h"

namespace domino::core {
namespace {

using test::make_command;
using test::replica_ids;

net::Topology five_dc() {
  return net::Topology{{"A", "B", "C", "D", "E"},
                       {{0, 20, 40, 60, 30},
                        {20, 0, 30, 50, 30},
                        {40, 30, 0, 10, 30},
                        {60, 50, 10, 0, 40},
                        {30, 30, 30, 40, 0}}};
}

struct ExtensionCluster : ::testing::Test {
  sim::Simulator simulator;
  net::Network network{simulator, five_dc(), 1};
  std::vector<NodeId> rids = replica_ids(3);
  std::vector<std::unique_ptr<Replica>> replicas;

  void SetUp() override {
    for (std::size_t i = 0; i < 3; ++i) {
      replicas.push_back(
          std::make_unique<Replica>(rids[i], i, network, rids, rids[0]));
      replicas.back()->attach();
      replicas.back()->start();
    }
  }

  std::unique_ptr<Client> make_client(NodeId id, std::size_t dc, ClientConfig cc) {
    auto c = std::make_unique<Client>(id, dc, network, rids, cc);
    c->attach();
    c->start();
    return c;
  }
};

TEST_F(ExtensionCluster, PreshardedTimestampsCarryClientId) {
  ClientConfig cc;
  cc.mode = ClientConfig::Mode::kDfpOnly;
  cc.additional_delay = milliseconds(1);
  cc.timestamp_shard_space = 1000;
  auto c = make_client(NodeId{1007}, 4, cc);
  simulator.run_until(TimePoint::epoch() + seconds(1));
  for (std::uint64_t s = 0; s < 5; ++s) c->submit(make_command(c->id(), s));
  simulator.run_until(TimePoint::epoch() + seconds(3));
  EXPECT_EQ(c->committed_count(), 5u);
  EXPECT_EQ(c->dfp_fast_learns(), 5u);
  // The committed positions' timestamps end in 1007 % 1000 = 7. Verify via
  // the replica log: scan the DFP lane entries... the log has been
  // executed+compacted, so instead check there were no collisions and all
  // went fast (a collision would force a slow path).
  EXPECT_EQ(replicas[0]->dfp_fast_commits(), 5u);
}

TEST_F(ExtensionCluster, PreshardedClientsNeverCollideAtSameInstant) {
  // Two clients in the same DC submit at the same instant each tick; with
  // identical OWD estimates their unsharded timestamps would collide, and
  // one of each pair would lose its position. Sharded, all commit fast.
  ClientConfig cc;
  cc.mode = ClientConfig::Mode::kDfpOnly;
  cc.additional_delay = milliseconds(1);
  cc.timestamp_shard_space = 1000;
  auto a = make_client(NodeId{2001}, 4, cc);
  auto b = make_client(NodeId{2002}, 4, cc);
  simulator.run_until(TimePoint::epoch() + seconds(1));
  for (std::uint64_t s = 0; s < 10; ++s) {
    simulator.schedule_after(milliseconds(static_cast<std::int64_t>(s) * 20), [&, s] {
      a->submit(make_command(a->id(), s));
      b->submit(make_command(b->id(), s));
    });
  }
  simulator.run_until(TimePoint::epoch() + seconds(4));
  EXPECT_EQ(a->committed_count(), 10u);
  EXPECT_EQ(b->committed_count(), 10u);
  EXPECT_EQ(a->dfp_fast_learns(), 10u);
  EXPECT_EQ(b->dfp_fast_learns(), 10u);
  // No no-op resolutions = no collisions anywhere.
  EXPECT_EQ(replicas[0]->dfp_noop_resolutions(), 0u);
}

TEST_F(ExtensionCluster, AdaptiveControllerGrowsSlackUnderMispredictions) {
  // Force systematic under-prediction with a negative additional delay; the
  // controller must claw the slack back until the fast path succeeds.
  ClientConfig cc;
  cc.mode = ClientConfig::Mode::kDfpOnly;
  cc.additional_delay = milliseconds(-3);  // predictions land 3 ms late
  cc.adaptive = true;
  cc.adaptive_step = milliseconds(1);
  auto c = make_client(NodeId{1000}, 4, cc);
  simulator.run_until(TimePoint::epoch() + seconds(1));
  sm::WorkloadConfig wc;
  sm::WorkloadGenerator gen(wc, 1);
  c->start_load(gen, 50.0);
  simulator.run_until(TimePoint::epoch() + seconds(8));
  c->stop_load();
  simulator.run_until(TimePoint::epoch() + seconds(12));
  EXPECT_EQ(c->committed_count(), c->submitted_count());
  // The controller accumulated enough slack to overcome the -3 ms bias...
  EXPECT_GE(c->adaptive_extra_delay(), milliseconds(3));
  // ...and the recent window shows a healthy fast path again.
  EXPECT_GT(c->recent_fast_rate(), 0.8);
}

TEST_F(ExtensionCluster, AdaptiveControllerIdleWhenHealthy) {
  ClientConfig cc;
  cc.mode = ClientConfig::Mode::kDfpOnly;
  cc.additional_delay = milliseconds(2);
  cc.adaptive = true;
  auto c = make_client(NodeId{1000}, 4, cc);
  simulator.run_until(TimePoint::epoch() + seconds(1));
  sm::WorkloadConfig wc;
  sm::WorkloadGenerator gen(wc, 1);
  c->start_load(gen, 50.0);
  simulator.run_until(TimePoint::epoch() + seconds(5));
  c->stop_load();
  simulator.run_until(TimePoint::epoch() + seconds(8));
  EXPECT_EQ(c->adaptive_extra_delay(), Duration::zero());
  EXPECT_GT(c->recent_fast_rate(), 0.95);
}

TEST_F(ExtensionCluster, ClientWorksThroughProxy) {
  // A proxy in DC E measures the replicas; the client only talks to it.
  auto proxy = std::make_unique<measure::Proxy>(NodeId{500}, 4, network, rids);
  proxy->attach();
  proxy->start();

  ClientConfig cc;
  cc.proxy = NodeId{500};
  cc.additional_delay = milliseconds(1);
  auto c = make_client(NodeId{1000}, 4, cc);
  simulator.run_until(TimePoint::epoch() + seconds(1));

  const auto est = c->estimates();
  EXPECT_NEAR(est.dfp.millis(), 30.0, 2.0);  // E is 30 ms from every replica
  EXPECT_NEAR(est.dm.millis(), 50.0, 2.0);

  for (std::uint64_t s = 0; s < 5; ++s) c->submit(make_command(c->id(), s));
  simulator.run_until(TimePoint::epoch() + seconds(4));
  EXPECT_EQ(c->committed_count(), 5u);
  EXPECT_EQ(c->dfp_chosen(), 5u);  // DFP wins from E, via proxy data
  EXPECT_EQ(c->dfp_fast_learns(), 5u);
  // The client sent zero probes of its own.
  EXPECT_EQ(c->prober().probes_sent(), 0u);
}

TEST_F(ExtensionCluster, ProxyClientFallsBackWhenProxyDies) {
  auto proxy = std::make_unique<measure::Proxy>(NodeId{500}, 4, network, rids);
  proxy->attach();
  proxy->start();
  ClientConfig cc;
  cc.proxy = NodeId{500};
  auto c = make_client(NodeId{1000}, 4, cc);
  simulator.run_until(TimePoint::epoch() + seconds(1));
  network.crash(NodeId{500});
  simulator.run_until(TimePoint::epoch() + seconds(3));
  // Stale feed -> estimates report unknown; proposals fall back to DM via
  // the first replica rather than stalling.
  const auto est = c->estimates();
  EXPECT_EQ(est.dfp, Duration::max());
  c->submit(make_command(c->id(), 0));
  simulator.run_until(TimePoint::epoch() + seconds(6));
  EXPECT_EQ(c->committed_count(), 1u);
}

}  // namespace
}  // namespace domino::core
