#!/usr/bin/env python3
"""Per-link delay bands of a WAN delay-trace CSV (see src/wan/delay_trace.h).

Usage:
  scripts/trace_stats.py bench/traces/globe_va.csv [more.csv ...]

For every directed link in each file, prints the sample count, time span,
median probing interval, and the p5/p50/p99 one-way-delay band in ms —
the quick sanity view of what a fixture will replay. Stdlib only.
"""

import sys


def percentile(sorted_values, pct):
    """Nearest-rank percentile on an already-sorted list."""
    if not sorted_values:
        return float("nan")
    k = max(0, min(len(sorted_values) - 1, round(pct / 100.0 * (len(sorted_values) - 1))))
    return sorted_values[k]


def parse_trace(path):
    """-> {(from, to): [(time_ms, owd_ms), ...]} in file order."""
    links = {}
    with open(path, "r", encoding="utf-8") as f:
        header_seen = False
        for line_no, raw in enumerate(f, start=1):
            line = raw.rstrip("\r\n")
            if not line or line.startswith("#"):
                continue
            if not header_seen:
                if line != "time_ms,from,to,owd_ms":
                    raise SystemExit(f"{path}:{line_no}: bad header {line!r}")
                header_seen = True
                continue
            fields = line.split(",")
            if len(fields) != 4:
                raise SystemExit(f"{path}:{line_no}: want 4 fields, got {len(fields)}")
            t_ms, src, dst, owd_ms = fields
            try:
                t = float(t_ms)
                owd = float(owd_ms)
            except ValueError:
                raise SystemExit(f"{path}:{line_no}: non-numeric field") from None
            links.setdefault((src, dst), []).append((t, owd))
    if not header_seen:
        raise SystemExit(f"{path}: no header found")
    return links


def median_interval(times):
    gaps = sorted(b - a for a, b in zip(times, times[1:]))
    return percentile(gaps, 50) if gaps else float("nan")


def main(argv):
    if len(argv) < 2 or argv[1] in ("-h", "--help"):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in argv[1:]:
        links = parse_trace(path)
        total = sum(len(v) for v in links.values())
        print(f"{path}: {len(links)} directed links, {total} samples")
        print(f"  {'link':<12} {'samples':>8} {'span_s':>8} {'ivl_ms':>8} "
              f"{'p5':>8} {'p50':>8} {'p99':>8}")
        for (src, dst), samples in links.items():
            times = [t for t, _ in samples]
            owds = sorted(owd for _, owd in samples)
            span_s = (times[-1] - times[0]) / 1000.0 if len(times) > 1 else 0.0
            print(f"  {src + '->' + dst:<12} {len(samples):>8} {span_s:>8.1f} "
                  f"{median_interval(times):>8.1f} {percentile(owds, 5):>8.2f} "
                  f"{percentile(owds, 50):>8.2f} {percentile(owds, 99):>8.2f}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
