#!/usr/bin/env python3
"""Diff two bench JSON reports (bench::emit_json_report, schema v2) with
tolerance bands — the compare half of the bench regression gate.

The baseline and candidate must describe the *same experiment*: the script
refuses to compare reports whose figure or meta (replica/client count and
sites, leader, per-client rate, warmup/measure durations, repetitions)
differ, so a config change can never masquerade as a performance change.
Seed and telemetry-interval differences only warn: they change the numbers,
not the experiment.

Per result label, a regression is flagged when the candidate is worse than
the baseline by more than the tolerance band:

  commit_ms p50/p95/p99 and mean   candidate > baseline * (1 + tol), and
                                   by more than --abs-floor-ms
  throughput_rps / committed       candidate < baseline * (1 - tol)

Improvements beyond the band are reported but never fail the gate. Exit
status: 0 clean, 1 regression(s), 2 usage or comparability error.

The simulation is virtual-time deterministic, so a same-toolchain rerun of
the same binary reproduces the baseline exactly; the default 5% band
absorbs intentional-but-neutral changes (e.g. tie-break reordering), not
machine noise.

Stdlib only; no third-party dependencies.

Usage:
  python3 scripts/bench_compare.py <baseline.json> <candidate.json>
      [--tolerance 0.05] [--abs-floor-ms 0.5]
  python3 scripts/bench_compare.py --selftest
"""

import copy
import json
import sys

# Meta fields that define the experiment: any difference is apples-to-oranges.
STRICT_META = [
    "replicas", "clients", "topology_dcs", "replica_sites", "leader_index",
    "rps_per_client", "warmup_ms", "measure_ms", "cooldown_ms", "repetitions",
]
# Differences here change values, not the experiment's identity.
WARN_META = ["base_seed", "timeseries_interval_ms"]

LATENCY_FIELDS = ["p50", "p95", "p99", "mean"]


def compare(base, cand, tolerance=0.05, abs_floor_ms=0.5):
    """Return (refusals, regressions, improvements, warnings) line lists."""
    refusals, regressions, improvements, warnings = [], [], [], []

    for doc, who in ((base, "baseline"), (cand, "candidate")):
        if doc.get("schema_version") != 2:
            refusals.append(f"{who}: schema_version "
                            f"{doc.get('schema_version')!r} (want 2)")
    if refusals:
        return refusals, regressions, improvements, warnings

    if base.get("figure") != cand.get("figure"):
        refusals.append(f"figure differs: {base.get('figure')!r} vs "
                        f"{cand.get('figure')!r}")
    bmeta, cmeta = base.get("meta", {}), cand.get("meta", {})
    for key in STRICT_META:
        if bmeta.get(key) != cmeta.get(key):
            refusals.append(f"meta.{key} differs: {bmeta.get(key)!r} vs "
                            f"{cmeta.get(key)!r}")
    for key in WARN_META:
        if bmeta.get(key) != cmeta.get(key):
            warnings.append(f"meta.{key} differs ({bmeta.get(key)!r} vs "
                            f"{cmeta.get(key)!r}); values will not match "
                            f"bit-for-bit")

    bres, cres = base.get("results", {}), cand.get("results", {})
    missing = sorted(set(bres) - set(cres))
    if missing:
        refusals.append(f"candidate is missing result labels: {missing}")
    added = sorted(set(cres) - set(bres))
    if added:
        warnings.append(f"candidate has new labels (not compared): {added}")
    if refusals:
        return refusals, regressions, improvements, warnings

    for label in sorted(bres):
        b, c = bres[label], cres[label]
        for field in LATENCY_FIELDS:
            bv = b["commit_ms"][field]
            cv = c["commit_ms"][field]
            if cv > bv * (1 + tolerance) and cv - bv > abs_floor_ms:
                regressions.append(
                    f"{label}: commit {field} {bv:.3f} -> {cv:.3f} ms "
                    f"(+{100 * (cv - bv) / bv:.1f}%, band {100 * tolerance:.0f}%)")
            elif bv > cv * (1 + tolerance) and bv - cv > abs_floor_ms:
                improvements.append(
                    f"{label}: commit {field} {bv:.3f} -> {cv:.3f} ms "
                    f"(-{100 * (bv - cv) / bv:.1f}%)")
        for field, low_is_bad in (("throughput_rps", True), ("committed", True)):
            bv, cv = b[field], c[field]
            if low_is_bad and cv < bv * (1 - tolerance):
                regressions.append(
                    f"{label}: {field} {bv} -> {cv} "
                    f"(-{100 * (bv - cv) / bv:.1f}%, band {100 * tolerance:.0f}%)")
    return refusals, regressions, improvements, warnings


def run_compare(base_path, cand_path, tolerance, abs_floor_ms):
    with open(base_path) as fh:
        base = json.load(fh)
    with open(cand_path) as fh:
        cand = json.load(fh)
    refusals, regressions, improvements, warnings = compare(
        base, cand, tolerance, abs_floor_ms)
    for line in warnings:
        print(f"warning: {line}")
    if refusals:
        print(f"REFUSED: {base_path} and {cand_path} are not comparable:")
        for line in refusals:
            print(f"  {line}")
        return 2
    for line in improvements:
        print(f"improved: {line}")
    if regressions:
        print(f"REGRESSION vs {base_path}:")
        for line in regressions:
            print(f"  {line}")
        return 1
    labels = len(base.get("results", {}))
    print(f"ok: {labels} result(s) within {100 * tolerance:.0f}% of {base_path}")
    return 0


def selftest():
    """Exercise the three verdicts on a synthetic report; exit 0 if all hold."""
    base = {
        "schema_version": 2,
        "figure": "selftest",
        "meta": {k: 1 for k in STRICT_META} | {"base_seed": 7,
                                               "timeseries_interval_ms": 250.0},
        "results": {
            "Proto": {
                "committed": 1000, "throughput_rps": 500.0,
                "commit_ms": {"count": 1000, "mean": 100.0, "p50": 90.0,
                              "p95": 200.0, "p99": 250.0},
            },
        },
    }
    failures = []

    same = compare(base, copy.deepcopy(base))
    if same[0] or same[1]:
        failures.append(f"identical reports must pass cleanly: {same}")

    slow = copy.deepcopy(base)
    slow["results"]["Proto"]["commit_ms"]["p95"] = 300.0  # +50%
    r = compare(base, slow)
    if not r[1] or r[0]:
        failures.append(f"+50% p95 must be flagged as a regression: {r}")
    if compare(slow, base)[1]:
        failures.append("a faster candidate must not fail the gate")

    tiny = copy.deepcopy(base)
    tiny["results"]["Proto"]["commit_ms"]["p50"] = 90.3  # inside abs floor
    if compare(base, tiny)[1]:
        failures.append("sub-floor jitter must not be flagged")

    other = copy.deepcopy(base)
    other["meta"]["replicas"] = 5
    if not compare(base, other)[0]:
        failures.append("a meta mismatch must refuse the comparison")

    reseeded = copy.deepcopy(base)
    reseeded["meta"]["base_seed"] = 8
    r = compare(base, reseeded)
    if r[0] or not r[3]:
        failures.append(f"a seed change must warn, not refuse: {r}")

    for line in failures:
        print(f"selftest FAILED: {line}")
    if not failures:
        print("selftest ok (6 checks)")
    return 1 if failures else 0


def main(argv):
    args = argv[1:]
    if args == ["--selftest"]:
        return selftest()
    tolerance, abs_floor_ms = 0.05, 0.5
    paths = []
    i = 0
    while i < len(args):
        if args[i] == "--tolerance":
            tolerance = float(args[i + 1])
            i += 2
        elif args[i] == "--abs-floor-ms":
            abs_floor_ms = float(args[i + 1])
            i += 2
        else:
            paths.append(args[i])
            i += 1
    if len(paths) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    return run_compare(paths[0], paths[1], tolerance, abs_floor_ms)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
