#!/usr/bin/env python3
"""Summarise prediction-audit CSVs (decision records and calibration).

Input is either kind of CSV the run report exports, recognised by header:

  RunReport::predict_csv()      one row per reconciled client decision
    protocol,request,mode,chosen,outcome,...,error_ns,error_valid,
    regret_ns,hindsight_best_ns,regret_valid,...,blamed,blamed_overshoot_ns

  RunReport::calibration_csv()  one row per (owner,target) estimator series
    owner,target,samples,covered,coverage,mean_margin_ns,max_overshoot_ns

Arguments may be CSV files or directories; directories are scanned
(non-recursively) for *.csv and every recognised file is folded in. For
decision files the script prints, per protocol: path/outcome mix, mean
absolute prediction error, total and mean oracle regret, and the most
blamed replicas. For calibration files: per-series coverage and the
worst-covered series.

Stdlib only; no third-party dependencies.

Usage:
  python3 scripts/predict_summary.py <csv-or-dir> [<csv-or-dir> ...]
"""

import csv
import os
import sys
from collections import defaultdict

DECISION_KEY = "regret_ns"      # only decision CSVs have this column
CALIBRATION_KEY = "mean_margin_ns"  # only calibration CSVs have this one


def expand(paths):
    """Yield CSV file paths, scanning directories one level deep."""
    for path in paths:
        if os.path.isdir(path):
            for name in sorted(os.listdir(path)):
                if name.endswith(".csv"):
                    yield os.path.join(path, name)
        else:
            yield path


def load(paths):
    decisions = defaultdict(list)   # protocol -> rows
    calibrations = []               # rows (owner/target are globally unique)
    skipped = []
    for path in expand(paths):
        with open(path, newline="") as fh:
            reader = csv.DictReader(fh)
            fields = reader.fieldnames or []
            if DECISION_KEY in fields:
                for row in reader:
                    decisions[row["protocol"]].append(row)
            elif CALIBRATION_KEY in fields:
                calibrations.extend(reader)
            else:
                skipped.append(path)
    return decisions, calibrations, skipped


def print_decisions(proto, rows):
    n = len(rows)
    by_chosen = defaultdict(int)
    by_outcome = defaultdict(int)
    blamed = defaultdict(int)
    err_sum = err_n = 0
    regret_sum = regret_n = regret_max = 0
    failovers = overrides = 0
    for row in rows:
        by_chosen[row["chosen"]] += 1
        by_outcome[row["outcome"]] += 1
        failovers += row["failover"] == "1"
        overrides += row["adaptive_override"] == "1"
        if row["error_valid"] == "1":
            err_sum += abs(int(row["error_ns"]))
            err_n += 1
        if row["regret_valid"] == "1":
            r = int(row["regret_ns"])
            regret_sum += r
            regret_max = max(regret_max, r)
            regret_n += 1
        if row["blamed"] != "-":
            blamed[row["blamed"]] += 1

    chosen = " ".join(f"{k}={v}" for k, v in sorted(by_chosen.items()))
    outcome = " ".join(f"{k}={v}" for k, v in sorted(by_outcome.items()))
    print(f"\n{proto}: {n} decisions  [{chosen}]  [{outcome}]")
    if failovers or overrides:
        print(f"  failovers={failovers} adaptive_overrides={overrides}")
    if err_n:
        print(f"  prediction error: {err_n} samples, "
              f"mean |error| {err_sum / err_n / 1e6:.3f} ms")
    if regret_n:
        print(f"  oracle regret:    {regret_n} samples, "
              f"total {regret_sum / 1e6:.3f} ms, "
              f"mean {regret_sum / regret_n / 1e6:.3f} ms, "
              f"max {regret_max / 1e6:.3f} ms")
    if blamed:
        worst = sorted(blamed.items(), key=lambda kv: (-kv[1], kv[0]))[:3]
        print("  most blamed:      "
              + ", ".join(f"{node} x{count}" for node, count in worst))


def print_calibration(rows):
    samples = sum(int(r["samples"]) for r in rows)
    covered = sum(int(r["covered"]) for r in rows)
    print(f"\ncalibration: {len(rows)} series, {samples} samples, "
          f"overall coverage {covered / samples:.3f}" if samples else
          f"\ncalibration: {len(rows)} series, no samples")
    worst = sorted(rows, key=lambda r: (float(r["coverage"]), r["owner"], r["target"]))[:3]
    for r in worst:
        print(f"  worst: {r['owner']}->{r['target']} coverage "
              f"{float(r['coverage']):.3f} over {r['samples']} samples, "
              f"max overshoot {int(r['max_overshoot_ns']) / 1e6:.3f} ms")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    decisions, calibrations, skipped = load(argv[1:])
    for path in skipped:
        print(f"skipping unrecognised CSV: {path}", file=sys.stderr)
    if not decisions and not calibrations:
        print("no prediction-audit rows found", file=sys.stderr)
        return 1
    for proto in sorted(decisions):
        print_decisions(proto, decisions[proto])
    if calibrations:
        print_calibration(calibrations)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
