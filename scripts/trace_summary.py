#!/usr/bin/env python3
"""Summarise per-command critical-path CSVs into a phase-attribution table.

Input is the CSV produced by obs::paths_to_csv (RunReport::command_csv or
the trace-suite sample at build/tests/critical_path_sample.csv): one row
per critical-path segment, with columns

  protocol,request,trace,submit_ns,commit_ns,total_ns,
  phase_index,phase,node,peer,begin_ns,end_ns,dur_ns

For each protocol in the file the script prints, per phase: how many
commands hit that phase, total/mean time spent in it, and its share of
the protocol's summed end-to-end latency.  Shares add up to 100% because
the analyzer tiles [submit, commit] exactly.

Arguments may also be directories: each is scanned (non-recursively) for
*.csv files, and every file found is summarised as its own run with a
one-line digest (file, protocol, commands, mean latency, dominant phase)
instead of the full table — handy for a results/ directory of sweeps.
Explicitly named files keep the full per-phase table.

Stdlib only; no third-party dependencies.

Usage:
  python3 scripts/trace_summary.py <csv-or-dir> [<csv-or-dir> ...]
"""

import csv
import os
import sys
from collections import defaultdict


def load(paths):
    """Return {protocol: {phase: [total_ns, hits, commands]}} plus totals."""
    phases = defaultdict(lambda: defaultdict(lambda: [0, 0, set()]))
    commands = defaultdict(set)
    for path in paths:
        with open(path, newline="") as fh:
            for row in csv.DictReader(fh):
                proto = row["protocol"]
                key = (row["request"], row["trace"])
                commands[proto].add(key)
                cell = phases[proto][row["phase"]]
                cell[0] += int(row["dur_ns"])
                cell[1] += 1
                cell[2].add(key)
    return phases, commands


def print_table(proto, phase_map, n_commands):
    total_ns = sum(cell[0] for cell in phase_map.values())
    print(f"\n{proto}: {n_commands} commands, "
          f"{total_ns / n_commands / 1e6:.3f} ms mean end-to-end latency")
    header = f"  {'phase':<24} {'cmds':>6} {'total ms':>10} {'mean ms':>9} {'share':>7}"
    print(header)
    print("  " + "-" * (len(header) - 2))
    ranked = sorted(phase_map.items(), key=lambda kv: kv[1][0], reverse=True)
    for phase, (ns, hits, cmds) in ranked:
        print(f"  {phase:<24} {len(cmds):>6} {ns / 1e6:>10.3f} "
              f"{ns / hits / 1e6:>9.3f} {100.0 * ns / total_ns:>6.1f}%")
    print(f"  {'(sum)':<24} {'':>6} {total_ns / 1e6:>10.3f} {'':>9} {100.0:>6.1f}%")


def is_trace_csv(path):
    """Directories hold mixed exports; only digest critical-path CSVs."""
    with open(path, newline="") as fh:
        header = csv.DictReader(fh).fieldnames or []
    return {"protocol", "phase", "dur_ns"} <= set(header)


def print_digest(path):
    """One line per run: file, protocol, commands, mean latency, top phase."""
    if not is_trace_csv(path):
        print(f"{path}: not a critical-path CSV, skipped")
        return
    phases, commands = load([path])
    if not phases:
        print(f"{path}: no critical-path rows")
        return
    for proto in sorted(phases):
        phase_map = phases[proto]
        n = len(commands[proto])
        total_ns = sum(cell[0] for cell in phase_map.values())
        top_phase, top_cell = max(phase_map.items(), key=lambda kv: kv[1][0])
        print(f"{path}: {proto} {n} commands, "
              f"{total_ns / n / 1e6:.3f} ms mean, "
              f"top phase {top_phase} ({100.0 * top_cell[0] / total_ns:.1f}%)")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    files = []
    digests = []
    for arg in argv[1:]:
        if os.path.isdir(arg):
            digests.extend(os.path.join(arg, name)
                           for name in sorted(os.listdir(arg))
                           if name.endswith(".csv"))
        else:
            files.append(arg)
    for path in digests:
        print_digest(path)
    if not files:
        return 0 if digests else 1
    phases, commands = load(files)
    if not phases:
        print("no critical-path rows found", file=sys.stderr)
        return 1
    for proto in sorted(phases):
        print_table(proto, phases[proto], len(commands[proto]))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
