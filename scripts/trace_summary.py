#!/usr/bin/env python3
"""Summarise per-command critical-path CSVs into a phase-attribution table.

Input is the CSV produced by obs::paths_to_csv (RunReport::command_csv or
the trace-suite sample at build/tests/critical_path_sample.csv): one row
per critical-path segment, with columns

  protocol,request,trace,submit_ns,commit_ns,total_ns,
  phase_index,phase,node,peer,begin_ns,end_ns,dur_ns

For each protocol in the file the script prints, per phase: how many
commands hit that phase, total/mean time spent in it, and its share of
the protocol's summed end-to-end latency.  Shares add up to 100% because
the analyzer tiles [submit, commit] exactly.

Arguments may also be directories: each is scanned (non-recursively) for
*.csv files, and every file found is summarised as its own run with a
one-line digest (file, protocol, commands, mean latency, dominant phase)
instead of the full table — handy for a results/ directory of sweeps.
Explicitly named files keep the full per-phase table.

*.json arguments are treated as Chrome-trace exports (RunReport::
chrome_trace / obs::chrome_trace_json): the script prints a recovery
summary instead — per node, crash/recover fault instants and every
amnesiac-recovery interval (the "recovery" complete slices emitted at
rejoin), with downtime and catch-up durations.

Stdlib only; no third-party dependencies.

Usage:
  python3 scripts/trace_summary.py <csv-json-or-dir> [<more> ...]
"""

import csv
import json
import os
import sys
from collections import defaultdict


def load(paths):
    """Return {protocol: {phase: [total_ns, hits, commands]}} plus totals."""
    phases = defaultdict(lambda: defaultdict(lambda: [0, 0, set()]))
    commands = defaultdict(set)
    for path in paths:
        with open(path, newline="") as fh:
            for row in csv.DictReader(fh):
                proto = row["protocol"]
                key = (row["request"], row["trace"])
                commands[proto].add(key)
                cell = phases[proto][row["phase"]]
                cell[0] += int(row["dur_ns"])
                cell[1] += 1
                cell[2].add(key)
    return phases, commands


def print_table(proto, phase_map, n_commands):
    total_ns = sum(cell[0] for cell in phase_map.values())
    print(f"\n{proto}: {n_commands} commands, "
          f"{total_ns / n_commands / 1e6:.3f} ms mean end-to-end latency")
    header = f"  {'phase':<24} {'cmds':>6} {'total ms':>10} {'mean ms':>9} {'share':>7}"
    print(header)
    print("  " + "-" * (len(header) - 2))
    ranked = sorted(phase_map.items(), key=lambda kv: kv[1][0], reverse=True)
    for phase, (ns, hits, cmds) in ranked:
        print(f"  {phase:<24} {len(cmds):>6} {ns / 1e6:>10.3f} "
              f"{ns / hits / 1e6:>9.3f} {100.0 * ns / total_ns:>6.1f}%")
    print(f"  {'(sum)':<24} {'':>6} {total_ns / 1e6:>10.3f} {'':>9} {100.0:>6.1f}%")


def recovery_summary(path):
    """Per-node crash/recovery report from a Chrome-trace JSON export.

    Recovery intervals are the cat=="recovery" complete ("X") slices the
    exporter writes at rejoin time; crash/recover instants are the
    cat=="fault" node-scoped events.  Timestamps in the file are in
    microseconds of virtual time.
    """
    with open(path) as fh:
        doc = json.load(fh)
    events = doc.get("traceEvents", [])
    crashes = defaultdict(int)
    recovers = defaultdict(int)
    intervals = defaultdict(list)  # node -> [(start_us, dur_us)]
    for e in events:
        node = e.get("tid", 0)
        if e.get("cat") == "recovery" and e.get("ph") == "X":
            intervals[node].append((e["ts"], e["dur"]))
        elif e.get("cat") == "fault":
            if e.get("name") == "node_crash":
                crashes[node] += 1
            elif e.get("name") == "node_recover":
                recovers[node] += 1

    nodes = sorted(set(crashes) | set(recovers) | set(intervals))
    if not nodes:
        print(f"{path}: no crash/recovery events")
        return
    n_intervals = sum(len(v) for v in intervals.values())
    total_ms = sum(dur for v in intervals.values() for _, dur in v) / 1e3
    print(f"{path}: {sum(crashes.values())} crashes, "
          f"{sum(recovers.values())} recoveries, "
          f"{n_intervals} amnesiac rejoins, "
          f"{total_ms:.3f} ms total catch-up time")
    header = f"  {'node':>6} {'crashes':>8} {'recovers':>9} {'rejoins':>8} {'catch-up intervals (ms)':<40}"
    print(header)
    print("  " + "-" * (len(header) - 2))
    for node in nodes:
        spans = ", ".join(f"[{ts / 1e3:.1f} +{dur / 1e3:.1f}]"
                          for ts, dur in sorted(intervals.get(node, [])))
        print(f"  {node:>6} {crashes.get(node, 0):>8} {recovers.get(node, 0):>9} "
              f"{len(intervals.get(node, [])):>8} {spans:<40}")


def is_trace_csv(path):
    """Directories hold mixed exports; only digest critical-path CSVs."""
    with open(path, newline="") as fh:
        header = csv.DictReader(fh).fieldnames or []
    return {"protocol", "phase", "dur_ns"} <= set(header)


def print_digest(path):
    """One line per run: file, protocol, commands, mean latency, top phase."""
    if not is_trace_csv(path):
        print(f"{path}: not a critical-path CSV, skipped")
        return
    phases, commands = load([path])
    if not phases:
        print(f"{path}: no critical-path rows")
        return
    for proto in sorted(phases):
        phase_map = phases[proto]
        n = len(commands[proto])
        total_ns = sum(cell[0] for cell in phase_map.values())
        top_phase, top_cell = max(phase_map.items(), key=lambda kv: kv[1][0])
        print(f"{path}: {proto} {n} commands, "
              f"{total_ns / n / 1e6:.3f} ms mean, "
              f"top phase {top_phase} ({100.0 * top_cell[0] / total_ns:.1f}%)")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    files = []
    digests = []
    traces = []
    for arg in argv[1:]:
        if os.path.isdir(arg):
            digests.extend(os.path.join(arg, name)
                           for name in sorted(os.listdir(arg))
                           if name.endswith(".csv"))
            traces.extend(os.path.join(arg, name)
                          for name in sorted(os.listdir(arg))
                          if name.endswith(".json"))
        elif arg.endswith(".json"):
            traces.append(arg)
        else:
            files.append(arg)
    for path in digests:
        print_digest(path)
    for path in traces:
        recovery_summary(path)
    if not files:
        return 0 if digests or traces else 1
    phases, commands = load(files)
    if not phases:
        print("no critical-path rows found", file=sys.stderr)
        return 1
    for proto in sorted(phases):
        print_table(proto, phases[proto], len(commands[proto]))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
