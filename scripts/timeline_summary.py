#!/usr/bin/env python3
"""Summarise windowed-telemetry timelines and SLO verdicts, optionally as an
HTML sparkline dashboard.

Inputs (mix freely; directories are scanned non-recursively):

  *.json  either a RunReport (harness::RunReport::to_json) with a
          "timeline" block — {"interval_ms", "series": {"windows", ...,
          "metrics": {name: {kind, arrays...}}}} — and an optional "slo"
          block, or a schema-v2 bench report (bench::emit_json_report)
          whose results each carry a "timeline".
  *.csv   the per-window CSV from obs::timeseries_to_csv
          (RunReport::timeline_csv): window,start_ns,end_ns,kind,name,
          field,value.

For every timeline the script prints one table row per metric: windows
seen, lifetime total (counters: summed deltas; histograms: summed counts),
the busiest window, and for histograms the worst per-window p95.  SLO
blocks print rule verdicts (breached windows, burns, worst value) and
steady-state verdicts (fault kind, reached, time-to-steady).

With --html OUT a self-contained dashboard is written: one inline-SVG
sparkline per metric series (counter deltas, gauge values, histogram p95),
no external assets, openable from a CI artifact listing.

Stdlib only; no third-party dependencies.

Usage:
  python3 scripts/timeline_summary.py [--html OUT] <json-csv-or-dir> ...
"""

import csv
import html
import json
import os
import sys
from collections import defaultdict


def series_rows(series):
    """Flatten a timeline "series" block into (name, kind, values, summary).

    `values` is the plottable per-window sequence (counter deltas, gauge
    values, histogram p95 in ns) and `summary` a dict of display fields.
    """
    rows = []
    n = series.get("windows", 0)
    for name in sorted(series.get("metrics", {})):
        m = series["metrics"][name]
        kind = m.get("kind", "?")
        if kind == "counter":
            deltas = m.get("delta", [])
            total = sum(deltas)
            rows.append((name, kind, deltas,
                         {"total": total,
                          "peak_window": max(deltas, default=0)}))
        elif kind == "gauge":
            values = m.get("value", [])
            rows.append((name, kind, values,
                         {"total": values[-1] if values else 0,
                          "peak_window": max(values, default=0)}))
        elif kind == "histogram":
            counts = m.get("count", [])
            p95 = m.get("p95", [])
            rows.append((name, kind, p95,
                         {"total": sum(counts),
                          "peak_window": max(counts, default=0),
                          "worst_p95_ms": max(p95, default=0) / 1e6}))
    return n, rows


def print_timeline(label, interval_ms, series):
    n, rows = series_rows(series)
    dropped = series.get("dropped_windows", 0)
    drop = f", {dropped} dropped" if dropped else ""
    print(f"\n{label}: {n} windows x {interval_ms:.0f} ms{drop}")
    header = (f"  {'metric':<36} {'kind':<10} {'total':>12} "
              f"{'peak/window':>12} {'worst p95 ms':>13}")
    print(header)
    print("  " + "-" * (len(header) - 2))
    for name, kind, _values, s in rows:
        p95 = f"{s['worst_p95_ms']:>13.3f}" if "worst_p95_ms" in s else f"{'-':>13}"
        print(f"  {name:<36} {kind:<10} {s['total']:>12} "
              f"{s['peak_window']:>12} {p95}")


def print_slo(label, slo):
    rules = slo.get("rules", [])
    steady = slo.get("steady_state", [])
    if not rules and not steady:
        return
    print(f"\n{label}: SLO verdicts "
          f"(steady metric {slo.get('steady_metric', '?')}, "
          f"tolerance {slo.get('steady_tolerance', 0):.2f}, "
          f"K={slo.get('steady_windows', 0)})")
    for r in rules:
        verdict = "OK" if r["windows_breached"] == 0 else (
            f"{r['windows_breached']}/{r['windows_evaluated']} breached, "
            f"{r['burns']} burns (longest {r['longest_burn_windows']}), "
            f"worst {r['worst_value']:.6g}")
        print(f"  rule {r['name']:<24} {r['kind']:<15} "
              f"threshold {r['threshold']:.6g}  {verdict}")
    for s in steady:
        if s["reached"]:
            verdict = (f"settled in {s['time_to_steady_ns'] / 1e6:.1f} ms "
                       f"(window {s['settle_window']})")
        else:
            verdict = "NEVER SETTLED"
        print(f"  fault {s['fault_kind']:<10} @{s['fault_ns'] / 1e6:>9.1f} ms "
              f"node {s['node']:<4} baseline {s['baseline']:>10.6g}  {verdict}")


def load_json(path):
    """Yield (label, interval_ms, series, slo_or_None) per timeline in file."""
    with open(path) as fh:
        doc = json.load(fh)
    base = os.path.basename(path)
    if "results" in doc:  # bench report (schema v2)
        meta = doc.get("meta", {})
        interval = meta.get("timeseries_interval_ms", 0.0)
        for label in sorted(doc["results"]):
            tl = doc["results"][label].get("timeline")
            if tl is not None:
                yield f"{base}:{label}", interval, tl, None
        return
    tl = doc.get("timeline")
    if tl is not None:
        label = doc.get("protocol", base)
        yield f"{base}:{label}", tl.get("interval_ms", 0.0), tl.get("series", {}), \
            doc.get("slo")


def csv_summary(path):
    """Digest a timeline CSV: per metric, windows / total / worst p95."""
    windows = set()
    totals = defaultdict(int)  # (kind, name) -> counter deltas or histogram count
    worst_p95 = defaultdict(int)
    with open(path, newline="") as fh:
        reader = csv.DictReader(fh)
        if not reader.fieldnames or "window" not in reader.fieldnames:
            print(f"{path}: not a timeline CSV, skipped")
            return
        for row in reader:
            windows.add(row["window"])
            key = (row["kind"], row["name"])
            if row["field"] in ("delta", "count"):
                totals[key] += int(row["value"])
            elif row["field"] == "p95":
                worst_p95[key] = max(worst_p95[key], int(row["value"]))
    print(f"\n{path}: {len(windows)} windows, {len(totals)} metrics")
    header = f"  {'metric':<36} {'kind':<10} {'total':>12} {'worst p95 ms':>13}"
    print(header)
    print("  " + "-" * (len(header) - 2))
    for (kind, name) in sorted(totals):
        p95 = worst_p95.get((kind, name), 0)
        p95_s = f"{p95 / 1e6:>13.3f}" if kind == "histogram" else f"{'-':>13}"
        print(f"  {name:<36} {kind:<10} {totals[(kind, name)]:>12} {p95_s}")


def sparkline(values, width=260, height=40):
    """Inline-SVG sparkline; flat series render as a midline."""
    if not values:
        return "<svg/>"
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1
    step = width / max(len(values) - 1, 1)
    pts = " ".join(
        f"{i * step:.1f},{height - 3 - (v - lo) / span * (height - 6):.1f}"
        for i, v in enumerate(values))
    return (f'<svg width="{width}" height="{height}" '
            f'viewBox="0 0 {width} {height}">'
            f'<polyline points="{pts}" fill="none" '
            f'stroke="#2a6fb0" stroke-width="1.5"/></svg>')


def html_dashboard(timelines, out_path):
    parts = [
        "<!doctype html><meta charset='utf-8'><title>timeline dashboard</title>",
        "<style>body{font:13px/1.4 sans-serif;margin:24px}"
        "h2{margin:24px 0 4px}table{border-collapse:collapse}"
        "td,th{padding:2px 10px;text-align:left;border-bottom:1px solid #ddd}"
        "td.num{text-align:right;font-variant-numeric:tabular-nums}</style>",
        "<h1>Windowed telemetry</h1>",
    ]
    for label, interval_ms, series, slo in timelines:
        n, rows = series_rows(series)
        parts.append(f"<h2>{html.escape(label)}</h2>"
                     f"<p>{n} windows &times; {interval_ms:.0f} ms</p>")
        parts.append("<table><tr><th>metric</th><th>kind</th>"
                     "<th>sparkline</th><th>total</th><th>peak/window</th></tr>")
        for name, kind, values, s in rows:
            parts.append(
                f"<tr><td>{html.escape(name)}</td><td>{kind}</td>"
                f"<td>{sparkline(values)}</td>"
                f"<td class='num'>{s['total']}</td>"
                f"<td class='num'>{s['peak_window']}</td></tr>")
        parts.append("</table>")
        if slo:
            parts.append("<p>")
            for st in slo.get("steady_state", []):
                verdict = (f"settled in {st['time_to_steady_ns'] / 1e6:.1f} ms"
                           if st["reached"] else "<b>never settled</b>")
                parts.append(
                    f"fault {html.escape(st['fault_kind'])} @"
                    f"{st['fault_ns'] / 1e6:.1f} ms: {verdict}<br>")
            parts.append("</p>")
    with open(out_path, "w") as fh:
        fh.write("".join(parts))
    print(f"\n[html dashboard written to {out_path}]")


def main(argv):
    args = argv[1:]
    html_out = None
    if "--html" in args:
        i = args.index("--html")
        if i + 1 >= len(args):
            print("--html needs an output path", file=sys.stderr)
            return 2
        html_out = args[i + 1]
        del args[i:i + 2]
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    jsons, csvs = [], []
    for arg in args:
        if os.path.isdir(arg):
            for name in sorted(os.listdir(arg)):
                path = os.path.join(arg, name)
                (jsons if name.endswith(".json") else
                 csvs if name.endswith(".csv") else []).append(path)
        elif arg.endswith(".json"):
            jsons.append(arg)
        else:
            csvs.append(arg)

    timelines = []
    for path in jsons:
        for label, interval, series, slo in load_json(path):
            timelines.append((label, interval, series, slo))
            print_timeline(label, interval, series)
            if slo:
                print_slo(label, slo)
    for path in csvs:
        csv_summary(path)
    if html_out and timelines:
        html_dashboard(timelines, html_out)
    if not timelines and not csvs:
        print("no timelines found", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
