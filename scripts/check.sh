#!/usr/bin/env bash
# Tier-1 check: configure, build, and run test suites.
#
# Usage:
#   scripts/check.sh              # plain RelWithDebInfo build + full ctest
#   scripts/check.sh --sanitize   # full suite with ASan + UBSan (DOMINO_SANITIZE)
#   scripts/check.sh --chaos      # chaos suite only (ctest -L chaos), sanitized
#   scripts/check.sh --trace      # tracing suite only (ctest -L trace), sanitized
#   scripts/check.sh --predict    # prediction-audit suite (ctest -L predict), sanitized
#   scripts/check.sh --recovery   # crash-recovery suite (ctest -L recovery), sanitized
#   scripts/check.sh --timeline   # windowed-telemetry/SLO suite (ctest -L timeline), sanitized
#   scripts/check.sh --wan        # WAN delay-trace suite (ctest -L wan), sanitized
#   scripts/check.sh --bench-baseline [--record]
#                                 # run the regression-gate bench and compare it
#                                 # against scripts/baselines/BENCH_gate.json
#                                 # (--record refreshes the baseline instead)
#   scripts/check.sh --all        # plain full suite, then every sanitized gate
#
# The build directory is build/ (or build-asan/ for sanitized modes) under
# the repository root. Extra arguments are forwarded to ctest.
#
# Gates (one row per mode in the table below):
#   --chaos   robustness: the seeded fault-injection sweep under ASan+UBSan
#             catches the memory errors fault-handling paths are prone to.
#   --trace   observability: causal tracing, critical paths, Chrome export;
#             smoke-runs scripts/trace_summary.py on the suite's sample CSV.
#   --predict prediction audit: decision-record reconciliation, calibration
#             and the exact oracle-regret identity; smoke-runs
#             scripts/predict_summary.py on the suite's sample CSVs.
#   --recovery amnesia-aware crash recovery: durable replay, peer catch-up,
#             and the weakened-persistence negative test; ASan+UBSan flags
#             use-after-free in restart/replay paths.  Smoke-runs
#             scripts/trace_summary.py on the suite's Chrome-trace sample
#             (per-node recovery intervals).
#   --timeline windowed telemetry: per-window counter/histogram deltas, SLO
#             burn windows and time-to-steady-state after faults; smoke-runs
#             scripts/timeline_summary.py on the suite's sample timeline
#             (tables + HTML sparkline dashboard) and
#             scripts/bench_compare.py --selftest.
#   --wan     WAN delay traces: adversarial CSV ingestion, empirical replay
#             models, non-stationary generators and the calibration-under-
#             drift acceptance run; smoke-runs scripts/trace_stats.py on the
#             checked-in fixtures under bench/traces/.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"

# Mode table: mode -> "build_subdir:sanitize:ctest_label:smoke".
# Empty label = full suite; smoke names the post-ctest tooling check.
declare -A modes=(
  [--default]="build:0::"
  [--sanitize]="build-asan:1::"
  [--chaos]="build-asan:1:chaos:"
  [--trace]="build-asan:1:trace:trace"
  [--predict]="build-asan:1:predict:predict"
  [--recovery]="build-asan:1:recovery:recovery"
  [--timeline]="build-asan:1:timeline:timeline"
  [--wan]="build-asan:1:wan:wan"
)

usage() {
  sed -n '2,43p' "$0" | sed 's/^# \{0,1\}//'
  exit 2
}

# Summarise a CSV with a stdlib-only script iff python3 and the file exist
# (test suites write the samples into the build's tests/ directory).
smoke_csv() {
  local script="$1"; shift
  local missing=0
  for f in "$@"; do [[ -f "$f" ]] || missing=1; done
  if command -v python3 >/dev/null && [[ "$missing" == 0 ]]; then
    python3 "$script" "$@"
  else
    echo "$(basename "$script") smoke skipped (python3 or sample missing: $*)" >&2
  fi
}

run_smoke() {
  local smoke="$1" build_dir="$2"
  case "$smoke" in
    trace)
      smoke_csv "$root/scripts/trace_summary.py" "$build_dir/tests/critical_path_sample.csv"
      ;;
    predict)
      smoke_csv "$root/scripts/predict_summary.py" \
        "$build_dir/tests/predict_sample.csv" "$build_dir/tests/calibration_sample.csv"
      ;;
    recovery)
      smoke_csv "$root/scripts/trace_summary.py" \
        "$build_dir/tests/recovery_trace_sample.json"
      ;;
    timeline)
      local sample_json="$build_dir/tests/timeline_sample.json"
      local sample_csv="$build_dir/tests/timeline_sample.csv"
      if command -v python3 >/dev/null && [[ -f "$sample_json" && -f "$sample_csv" ]]; then
        python3 "$root/scripts/timeline_summary.py" \
          --html "$build_dir/tests/timeline_dashboard.html" \
          "$sample_json" "$sample_csv"
        python3 "$root/scripts/bench_compare.py" --selftest
      else
        echo "timeline smoke skipped (python3 or samples missing)" >&2
      fi
      ;;
    wan)
      smoke_csv "$root/scripts/trace_stats.py" \
        "$root/bench/traces/globe_va.csv" "$root/bench/traces/va_wa_drift.csv"
      ;;
  esac
}

# Run the deterministic regression-gate bench and diff it against the
# checked-in baseline; with --record, refresh the baseline instead.
bench_baseline() {
  local record=0
  [[ "${1:-}" == "--record" ]] && record=1
  local build_dir="$root/build"
  cmake -B "$build_dir" -S "$root"
  cmake --build "$build_dir" -j "$(nproc)" --target bench_regression_gate
  local out="$build_dir/bench/BENCH_gate.json"
  "$build_dir/bench/bench_regression_gate" "$out"
  local baseline="$root/scripts/baselines/BENCH_gate.json"
  if [[ "$record" == 1 || ! -f "$baseline" ]]; then
    mkdir -p "$(dirname "$baseline")"
    cp "$out" "$baseline"
    echo "bench baseline recorded at $baseline"
  else
    python3 "$root/scripts/bench_compare.py" "$baseline" "$out"
  fi
}

run_mode() {
  local mode="$1"; shift
  local row="${modes[$mode]}"
  local subdir sanitize label smoke
  IFS=: read -r subdir sanitize label smoke <<<"$row"
  local build_dir="$root/$subdir"
  local cmake_args=()
  [[ "$sanitize" == 1 ]] && cmake_args+=(-DDOMINO_SANITIZE=ON)
  local ctest_args=()
  [[ -n "$label" ]] && ctest_args+=(-L "$label")

  cmake -B "$build_dir" -S "$root" "${cmake_args[@]}"
  cmake --build "$build_dir" -j "$(nproc)"
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)" "${ctest_args[@]}" "$@"
  run_smoke "$smoke" "$build_dir"
}

mode="--default"
case "${1:-}" in
  --help|-h) usage ;;
  --all)
    shift
    # Full plain suite first, then every sanitized gate (one build-asan
    # configure+build serves all six labelled suites).
    run_mode --default "$@"
    for gate in --chaos --trace --predict --recovery --timeline --wan; do run_mode "$gate" "$@"; done
    exit 0
    ;;
  --bench-baseline)
    shift
    bench_baseline "$@"
    exit 0
    ;;
  --*)
    [[ -v "modes[$1]" ]] || usage
    mode="$1"
    shift
    ;;
esac

run_mode "$mode" "$@"
