#!/usr/bin/env bash
# Tier-1 check: configure, build, and run the full test suite.
#
# Usage:
#   scripts/check.sh              # plain RelWithDebInfo build + ctest
#   scripts/check.sh --sanitize   # same, with ASan + UBSan (DOMINO_SANITIZE)
#
# The build directory is build/ (or build-asan/ with --sanitize) under the
# repository root.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$root/build"
cmake_args=()

if [[ "${1:-}" == "--sanitize" ]]; then
  build_dir="$root/build-asan"
  cmake_args+=(-DDOMINO_SANITIZE=ON)
  shift
fi

cmake -B "$build_dir" -S "$root" "${cmake_args[@]}"
cmake --build "$build_dir" -j "$(nproc)"
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)" "$@"
