#!/usr/bin/env bash
# Tier-1 check: configure, build, and run the full test suite.
#
# Usage:
#   scripts/check.sh              # plain RelWithDebInfo build + ctest
#   scripts/check.sh --sanitize   # same, with ASan + UBSan (DOMINO_SANITIZE)
#   scripts/check.sh --chaos      # chaos suite only (ctest -L chaos), sanitized
#   scripts/check.sh --trace      # tracing suite only (ctest -L trace), sanitized
#
# The build directory is build/ (or build-asan/ with
# --sanitize/--chaos/--trace) under the repository root.
#
# --chaos is the robustness gate: the seeded fault-injection sweep
# (tests/integration/test_chaos.cpp) exercises crash/partition/degradation
# schedules across every protocol, and running it under ASan+UBSan catches
# the memory errors that fault-handling paths are most prone to.
#
# --trace is the observability gate: the causal-tracing suite (wire trace
# context, span propagation, critical-path analysis, Chrome-trace export)
# under the same sanitizers, followed by a smoke run of
# scripts/trace_summary.py over the per-command CSV the suite writes.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$root/build"
cmake_args=()
ctest_args=()
trace_smoke=0

case "${1:-}" in
  --sanitize)
    build_dir="$root/build-asan"
    cmake_args+=(-DDOMINO_SANITIZE=ON)
    shift
    ;;
  --chaos)
    build_dir="$root/build-asan"
    cmake_args+=(-DDOMINO_SANITIZE=ON)
    ctest_args+=(-L chaos)
    shift
    ;;
  --trace)
    build_dir="$root/build-asan"
    cmake_args+=(-DDOMINO_SANITIZE=ON)
    ctest_args+=(-L trace)
    trace_smoke=1
    shift
    ;;
esac

cmake -B "$build_dir" -S "$root" "${cmake_args[@]}"
cmake --build "$build_dir" -j "$(nproc)"
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)" "${ctest_args[@]}" "$@"

if [[ "$trace_smoke" == 1 ]]; then
  # CriticalPathRun.WritesSampleCsvForTooling leaves a per-command CSV in
  # the test working directory; summarising it proves the CSV and the
  # stdlib-only tooling agree on the format.
  sample="$build_dir/tests/critical_path_sample.csv"
  if command -v python3 >/dev/null && [[ -f "$sample" ]]; then
    python3 "$root/scripts/trace_summary.py" "$sample"
  else
    echo "trace_summary smoke skipped (python3 or $sample missing)" >&2
  fi
fi
