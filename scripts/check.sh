#!/usr/bin/env bash
# Tier-1 check: configure, build, and run the full test suite.
#
# Usage:
#   scripts/check.sh              # plain RelWithDebInfo build + ctest
#   scripts/check.sh --sanitize   # same, with ASan + UBSan (DOMINO_SANITIZE)
#   scripts/check.sh --chaos      # chaos suite only (ctest -L chaos), sanitized
#
# The build directory is build/ (or build-asan/ with --sanitize/--chaos)
# under the repository root.
#
# --chaos is the robustness gate: the seeded fault-injection sweep
# (tests/integration/test_chaos.cpp) exercises crash/partition/degradation
# schedules across every protocol, and running it under ASan+UBSan catches
# the memory errors that fault-handling paths are most prone to.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$root/build"
cmake_args=()
ctest_args=()

case "${1:-}" in
  --sanitize)
    build_dir="$root/build-asan"
    cmake_args+=(-DDOMINO_SANITIZE=ON)
    shift
    ;;
  --chaos)
    build_dir="$root/build-asan"
    cmake_args+=(-DDOMINO_SANITIZE=ON)
    ctest_args+=(-L chaos)
    shift
    ;;
esac

cmake -B "$build_dir" -S "$root" "${cmake_args[@]}"
cmake --build "$build_dir" -j "$(nproc)"
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)" "${ctest_args[@]}" "$@"
